(** Instruction-hit signature kernels: word-parallel [P]/[Ptr] queries.

    {!Ift.p_any} answers [P(EN_S)] by testing every instruction's
    used-module set against [S] — O(K · words(modules)) per query — and
    {!Imatt.ptr} rescans every IMATT row the same way. During greedy
    merging both are asked about {e unions} of sets whose answers are
    already known, so the module sets are redundant: all that matters is
    {e which instructions hit} the set.

    A signature caches exactly that, as bitsets:

    - [H(S)] over instructions: bit [i] set iff [uses(I_i) ∩ S ≠ ∅].
      [P(EN_S)] is then the count-weighted popcount of [H(S)].
    - [NOW(S)]/[NEXT(S)] over IMATT rows: row [r]'s bits are
      [H(S).(first_r)] and [H(S).(second_r)]. The enable toggles across
      row [r] iff the bits differ, so [Ptr(EN_S)] is the count-weighted
      popcount of [NOW(S) lxor NEXT(S)].

    All three bitsets are unioned by word-wise OR — [H(S ∪ T) = H(S) lor
    H(T)], and since [now(S ∪ T) = now(S) ∨ now(T)], the union's toggle
    bits are exactly [(NOW_S lor NOW_T) lxor (NEXT_S lor NEXT_T)] — so a
    candidate merge's exact [P]/[Ptr] needs no module sets, no RTL walk
    and no allocation.

    Weighted popcounts are answered from bit-sliced weight planes: plane
    [b] holds the bits whose count has bit [b] set, so one query word
    costs [⌈log₂ max_count⌉] hardware popcounts —
    [Σ_b 2^b · popcnt (x land plane_b)] — evaluated by a noalloc C stub
    (or a pure-OCaml fallback over the same arena; see {!kernel}). Hit
    sums are integers either way, so {!p} and {!ptr} agree {e bit-for-bit}
    with {!Ift.p_any} and {!Imatt.ptr}. The batched entry points
    ({!p_batch}, {!ptr_batch}, {!p_union_batch}) evaluate a whole
    candidate frontier in one C call, amortizing bounds checks and
    call overhead. *)

type kernel
(** The weight-plane arenas: per-instruction and per-IMATT-row, shared by
    every signature derived from one profile. *)

type t = { hits : int array; now : int array; next : int array; tog : int array }
(** The signature of one module set. [tog] caches [now lxor next] — the
    [Ptr] query word — and is kept consistent by every constructor here;
    build [t] values only through {!of_set}, {!create} and {!union}.
    Treat as immutable: {!union_into} writes only into signatures
    created by {!create}. (Field order is ABI with the C stubs — do not
    reorder.) *)

val kernel : ?force_ocaml:bool -> Ift.t -> Imatt.t -> kernel
(** Build the kernel for one profile's table pair. Raises
    [Invalid_argument] when the two tables disagree on their RTL.

    Queries run through the C stub unless [force_ocaml] is set,
    [GCR_SIG_KERNEL=ocaml] is in the environment, or the build-time
    self-check (C vs OCaml on probe signatures) disagrees — all three
    pin the kernel to the pure-OCaml fallback, which computes the same
    integer sums over the same arena. *)

val uses_c_kernel : kernel -> bool
(** Whether this kernel answers queries in C (for tests/diagnostics). *)

val patch_kernel : kernel -> Ift.t -> Imatt.t -> kernel option
(** Patch the kernel's weight planes {e in place} for updated tables over
    the same RTL — the streaming-ingestion fast path. Succeeds exactly
    when the IMATT {e row set} (the ordered pairs with positive count) is
    unchanged, so the bit geometry is intact and only counts moved: one
    sweep repairs the touched plane bits, masks, heavy flags and totals
    (reading each bit's previous count out of the arena's weights
    segment), and the result answers every query bit-for-bit like a
    fresh {!kernel} over the new tables. Returns [None] — arenas
    untouched, caller must rebuild — when the RTL differs or new pairs
    appeared (a geometry change).

    The returned kernel {e shares the mutated arenas} with its input:
    after [Some k'], the old kernel must not be queried again, and no
    other domain may hold it (single-owner update flows only — the serve
    cache rebuilds instead, so in-flight readers of the old kernel stay
    consistent). Existing signatures remain valid: row bits depend only
    on the row set, which is unchanged. The C-vs-OCaml self-check is
    re-run on the patched arenas. *)

val of_set : kernel -> Module_set.t -> t
(** Signature of a module set: one scan of the RTL's used-module sets
    (the last time the module universe is touched). Raises
    [Invalid_argument] on a universe mismatch. *)

val create : kernel -> t
(** An all-zero signature (the empty set), for {!union_into} chains. *)

val union : t -> t -> t
(** Fresh word-wise OR of two signatures. *)

val union_into : t -> t -> t -> unit
(** [union_into dst a b] ORs [a] and [b] into [dst], allocation-free. *)

val p : kernel -> t -> float
(** [P(EN)] of the signature's set; equals {!Ift.p_any} exactly. *)

val ptr : kernel -> t -> float
(** [Ptr(EN)] of the signature's set; equals {!Imatt.ptr} exactly. *)

val p_union : kernel -> t -> t -> float
(** [P(EN)] of the union of two signatures' sets, without materializing
    the union — the greedy candidate evaluation. Equals
    [p k (union a b)] exactly. *)

val ptr_union : kernel -> t -> t -> float
(** [Ptr(EN)] of the union, likewise. *)

(** {1 Set algebra over instruction-hit bitsets}

    These compare signatures at the {e waveform} level: [H(S)] determines
    the enable's value on every cycle of the profiled stream (the gate is
    open on cycle [c] iff bit [instr_c] of [H(S)] is set), so
    [H(A) ⊆ H(B)] means gate [B] is open whenever gate [A] is, and
    [|H(A) Δ H(B)|] counts the instructions on which the two enables
    disagree — 0 iff the waveforms are cycle-for-cycle identical. This is
    the gate-sharing criterion: it is coarser than module-set equality
    (distinct module sets with the same hit pattern share safely). *)

val subset : kernel -> t -> t -> bool
(** [subset k a b] is [true] iff every instruction hitting [a]'s set also
    hits [b]'s — i.e. [H(a) ⊆ H(b)]. *)

val symm_diff_count : kernel -> t -> t -> int
(** Number of instructions in the symmetric difference [H(a) Δ H(b)]
    (unweighted popcount; [0] iff the enable waveforms coincide). *)

(** {1 Batched evaluation}

    Each call writes results for the first [n] signatures (default: the
    whole array) into [out.(0 .. n-1)], bit-for-bit equal to the scalar
    query on each element. One C call per batch; each signature's
    geometry is validated inside the kernel loop as it is reached.
    Raises [Invalid_argument] if [n] exceeds either array, or on a
    signature/kernel mismatch — in the latter case [out] may already be
    partially written. *)

val p_batch : kernel -> ?n:int -> t array -> float array -> unit
(** [p_batch k sigs out]: [out.(i) = p k sigs.(i)]. *)

val ptr_batch : kernel -> ?n:int -> t array -> float array -> unit
(** [ptr_batch k sigs out]: [out.(i) = ptr k sigs.(i)]. *)

val p_union_batch : kernel -> t -> ?n:int -> t array -> float array -> unit
(** [p_union_batch k a sigs out]: [out.(i) = p_union k a sigs.(i)] — the
    fused merge-candidate evaluation. *)

val subset_batch : kernel -> t -> ?n:int -> t array -> bool array -> unit
(** [subset_batch k a sigs out]: [out.(i) = subset k a sigs.(i)] — is the
    anchor's hit set contained in each candidate's. *)

val symm_diff_batch : kernel -> t -> ?n:int -> t array -> int array -> unit
(** [symm_diff_batch k a sigs out]:
    [out.(i) = symm_diff_count k a sigs.(i)] — the gate-sharing
    near-subsumption sweep against one anchor. *)
