(** Nearest-neighbor zero-skew topology (the Edahiro-style heuristic the
    paper uses for its buffered baseline and cites as [3]).

    Greedily merges the two subtree roots whose merging sectors are
    geometrically closest; with [edge_gate = Some tech.buffer] this yields
    the paper's "buffered clock tree" construction.

    Candidate pairs come from a {!Spatial} grid index over merging-region
    centers (~O(n log n) construction); {!topology_dense} runs the same
    greedy on the all-pairs reference oracle instead. *)

val topology : Tech.t -> edge_gate:Tech.gate option -> Sink.t array -> Topo.t
(** Build the complete topology (spatially accelerated). Raises
    [Invalid_argument] on an empty or mis-indexed sink array. *)

val topology_dense :
  Tech.t -> edge_gate:Tech.gate option -> Sink.t array -> Topo.t
(** Same construction on {!Greedy.merge_all_dense} — the O(n^2)-memory
    all-pairs path, kept as the validation oracle and benchmark baseline.
    Identical merge decisions up to cost ties. *)

val spatial_source : Grow.t -> Sink.t array -> Greedy.source
(** The grid-backed candidate source used by {!topology}, exposed for
    engines that drive {!Greedy.merge_all} themselves with a purely
    geometric cost ([Grow.dist] of the same forest). *)

val embed :
  Tech.t ->
  edge_gate:Tech.gate option ->
  root_anchor:Geometry.Point.t ->
  Sink.t array ->
  Embed.t
(** Topology plus DME embedding with the same uniform gate assignment. *)
