examples/gate_reduction_sweep.mli:
