exception Error of { source : string; line : int; msg : string }

let fail ~source ~line fmt =
  Printf.ksprintf (fun msg -> raise (Error { source; line; msg })) fmt

let strip_comment s =
  match String.index_opt s '#' with None -> s | Some i -> String.sub s 0 i

let significant_lines contents =
  let lines = String.split_on_char '\n' contents in
  List.filteri (fun _ _ -> true) lines
  |> List.mapi (fun i l -> (i + 1, strip_comment l))
  |> List.filter (fun (_, l) -> String.trim l <> "")

let fields line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun f -> f <> "")

let float_field ~source ~line ~what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> f
  | Some _ | None -> fail ~source ~line "invalid %s: %S" what s

let int_field ~source ~line ~what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ~source ~line "invalid %s: %S" what s

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let error_to_string = function
  | Error { source; line; msg } -> Some (Printf.sprintf "%s:%d: %s" source line msg)
  | _ -> None
