(** Deterministic recursive bisection of a sink set into regions, for the
    sharded router.

    Splits along the wider chip-space axis at a proportional order
    statistic, recursing until the requested region count is reached.
    When a [groups] labelling is supplied (floorplan clusters — e.g. the
    {!Benchmarks.Rbench} functional groups carried as sink module ids),
    each cut snaps to the nearest group boundary within a window around
    the proportional point, so clusters land whole inside one region
    whenever the balance allows: sinks of one cluster share enable
    activity, and keeping them together lets the region router merge them
    under one gate instead of leaving that to the top-level stitch. *)

val bisect :
  ?groups:int array -> n_regions:int -> Sink.t array -> int array array
(** [bisect ~n_regions sinks] partitions [0 .. n-1] (sink ids) into at
    most [n_regions] non-empty index sets, covering every sink exactly
    once. The effective region count is clamped to [n]; [n_regions <= 1]
    yields one region. [groups], when given, must have one label per
    sink. Output is deterministic: regions in recursion order (left
    before right), indices within a region sorted ascending. Raises
    [Invalid_argument] on an empty sink array, a non-positive clamp, or a
    mis-sized [groups]. *)
