type t = { topo : Topo.t; mseg : Mseg.t }

let of_mseg topo (mseg : Mseg.t) ~root_anchor =
  Topo.iter_top_down topo (fun v ->
      let target =
        match Topo.parent topo v with
        | None -> Geometry.Rot.of_point root_anchor
        | Some p -> Geometry.Rot.of_point (Arena.loc mseg p)
      in
      Arena.set_loc mseg v
        (Geometry.Rot.to_point (Geometry.Rect.nearest_to (Arena.region mseg v) target)));
  { topo; mseg }

let build tech topo ~sinks ~gate_on_edge ~root_anchor =
  of_mseg topo (Mseg.build tech topo ~sinks ~gate_on_edge) ~root_anchor

let loc t v = Arena.loc t.mseg v

let edge_len t v = Mseg.edge_len t.mseg v

let total_wirelength t = Mseg.total_wirelength t.mseg

let copy t = { t with mseg = Mseg.copy t.mseg }

let gate_location t v =
  match Topo.parent t.topo v with None -> loc t v | Some p -> loc t p

let check_consistency t =
  let n = Topo.n_nodes t.topo in
  let fail fmt =
    Printf.ksprintf
      (fun detail ->
        Util.Gcr_error.raise_t
          (Util.Gcr_error.Engine_mismatch
             { stage = "Embed.check_consistency"; detail }))
      fmt
  in
  for v = 0 to n - 1 do
    let { Geometry.Point.x; y } = loc t v in
    (* A NaN coordinate passes every tolerance comparison below (NaN
       compares false), so finiteness is asserted first. *)
    if not (Float.is_finite x && Float.is_finite y) then
      Util.Gcr_error.numerical ~stage:"Embed.check_consistency"
        ~value:(if Float.is_finite x then y else x)
        "node %d has a non-finite coordinate (%g, %g)" v x y;
    Util.Gcr_error.check_finite ~stage:"Embed.check_consistency"
      ~context:(Printf.sprintf "edge length of node %d" v)
      (Mseg.edge_len t.mseg v);
    let region = Mseg.region t.mseg v in
    if not (Geometry.Rect.contains ~eps:1e-6 region (Geometry.Rot.of_point (loc t v)))
    then fail "node %d placed outside its region" v;
    match Topo.parent t.topo v with
    | None -> ()
    | Some p ->
      let lp = loc t p in
      let d = Geometry.Point.manhattan (loc t v) lp in
      let e = Mseg.edge_len t.mseg v in
      (* Mseg.merge_region recovers a float-hair intersection miss with
         slack relative to the merge distance, so a placement can overshoot
         the wire by an amount that scales with the coordinate magnitude,
         not with e (seen at e = 0 on large dies): that magnitude enters
         the tolerance as the [scale] term (1e-6 · 0.01·coord = the old
         1e-8·coord allowance). *)
      let coord_scale =
        Float.abs lp.Geometry.Point.x +. Float.abs lp.Geometry.Point.y
      in
      if
        not
          (Util.Tol.within ~rel:1e-6 ~scale:(0.01 *. coord_scale) ~value:d
             ~bound:e ())
      then fail "edge %d->%d spans %.9g but has wire %.9g" p v d e
  done
