type report = {
  sink_delay : float array;
  max_delay : float;
  min_delay : float;
  skew : float;
}

let evaluate tech (embed : Embed.t) ~gate_on_edge =
  let topo = embed.Embed.topo in
  let n = Topo.n_nodes topo in
  let n_sinks = Topo.n_sinks topo in
  (* Downstream capacitance, recomputed bottom-up from wire lengths. *)
  let cap = Array.make n 0.0 in
  Topo.iter_bottom_up topo (fun v ->
      match Topo.children topo v with
      | None -> cap.(v) <- Mseg.cap embed.Embed.mseg v (* sink load *)
      | Some (a, b) ->
        let side c =
          let e = Embed.edge_len embed c in
          Zskew.branch_head_cap tech
            { Zskew.delay = 0.0; cap = cap.(c); gate = gate_on_edge c }
            e
        in
        cap.(v) <- side a +. side b);
  (* Delay from the root down, top-down. Path delays are compensated
     (Neumaier) per node: deep trees chain hundreds of branch delays, and
     uncompensated drift there shows up as phantom skew against the
     checkers' tight relative tolerances. *)
  let delay_to = Array.make n 0.0 in
  let comp = Array.make n 0.0 in
  Topo.iter_top_down topo (fun v ->
      match Topo.parent topo v with
      | None ->
        delay_to.(v) <- 0.0;
        comp.(v) <- 0.0
      | Some p ->
        let e = Embed.edge_len embed v in
        let through =
          Zskew.branch_delay tech
            { Zskew.delay = 0.0; cap = cap.(v); gate = gate_on_edge v }
            e
        in
        let s, c = Util.Kahan.step ~sum:delay_to.(p) ~comp:comp.(p) through in
        delay_to.(v) <- s;
        comp.(v) <- c);
  let sink_delay = Array.init n_sinks (fun s -> delay_to.(s) +. comp.(s)) in
  let min_delay, max_delay = Util.Stats.min_max sink_delay in
  { sink_delay; max_delay; min_delay; skew = max_delay -. min_delay }

let phase_delay r = r.max_delay
