type t = { u : float; v : float }

let of_point (p : Point.t) = { u = p.x +. p.y; v = p.x -. p.y }

let to_point r = Point.make ((r.u +. r.v) /. 2.0) ((r.u -. r.v) /. 2.0)

let chebyshev a b = Float.max (Float.abs (a.u -. b.u)) (Float.abs (a.v -. b.v))

let equal ?(eps = 1e-9) a b =
  Float.abs (a.u -. b.u) <= eps && Float.abs (a.v -. b.v) <= eps

let pp ppf r = Format.fprintf ppf "{u=%g; v=%g}" r.u r.v
