(** PROCEDURE GatedClockRouting — the paper's Section 4 algorithm.

    Greedy bottom-up merging where the next pair is the one with the
    smallest merge switched capacitance (Equation (3)), evaluated with a
    tentative zero-skew split of the merging-sector distance and the
    controller star estimated from the sector midpoints; followed by
    top-down DME placement. Every edge receives a masking gate during
    construction (gate reduction is a separate pass, {!Gate_reduction}).

    Complexity: O(B) to scan the stream once (done by the caller when
    building the {!Activity.Profile}), O(K N^2 (log N + W)) for the merge
    loop where W is the bitset word count — the practical counterpart of
    the paper's O(B + K^2 N^2) bound. *)

val route :
  ?skew_budget:float ->
  Config.t ->
  Activity.Profile.t ->
  Clocktree.Sink.t array ->
  Gated_tree.t
(** Build the fully gated zero-skew tree (or bounded-skew, with a positive
    [skew_budget] in ohm x fF). Raises [Invalid_argument] on an empty or
    mis-indexed sink array, or when a sink's module id falls outside the
    profile's universe. *)

val route_dense :
  ?skew_budget:float ->
  Config.t ->
  Activity.Profile.t ->
  Clocktree.Sink.t array ->
  Gated_tree.t
(** {!route} driven by the all-pairs reference engine
    ({!Clocktree.Greedy.merge_all_dense}) instead of the NN-heap scan
    engine — the degradation target of {!Flow}'s paranoid mode when the
    fast engine's output fails an invariant check. Same contract as
    {!route}. *)

val route_topology_only :
  Config.t -> Activity.Profile.t -> Clocktree.Sink.t array -> Clocktree.Topo.t
(** Just the min-switched-capacitance topology (used by ablations that
    re-cost the same topology under different embeddings). *)

(** {1 The merge core}

    The greedy loop factored out as an explicit forest, so the sharded
    router ({!Shard_router}) can drive the same cost/merge machinery
    per region and again over the region roots during stitching. *)

type forest
(** A growing forest of zero-skew subtrees with the paper's Eq. (3)
    enable bookkeeping alongside ({!Clocktree.Grow} + per-root
    {!Enable}). *)

val forest :
  Config.t -> Activity.Profile.t -> Clocktree.Sink.t array -> forest
(** Fresh forest, every sink its own root. Raises [Invalid_argument] on a
    mis-indexed sink array. *)

val grow : forest -> Clocktree.Grow.t
(** The underlying merge state (active roots, regions, merge list). *)

val cost : forest -> int -> int -> float
(** Eq. (3) merge switched capacitance of tentatively merging two active
    roots: clock-tree term from a tentative zero-skew split plus the
    controller star term from the sector midpoints. *)

val merge : forest -> int -> int -> int
(** Commit a merge (Grow + enable union); returns the new root id. *)

val run : ?dense:bool -> forest -> unit
(** Greedy-merge the forest down to a single root with the NN-heap scan
    engine (or the all-pairs reference engine when [dense]). Must be
    called on a fresh forest — the engines start from the sink roots. *)
