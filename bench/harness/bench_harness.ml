(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus the ablations called out in DESIGN.md, then
   times the computational kernels with Bechamel (one Test.make per
   table/figure, plus micro-benchmarks).

   Library form: every experiment is a named section in {!sections}, and
   {!run} executes all of them or a chosen subset — the same registry
   backs `dune exec bench/main.exe` (driven by GCR_BENCH_* environment
   variables, see bench/main.ml) and the `gcr bench` CLI subcommand.
   Sections that produce machine-readable numbers record JSON fragments;
   {!run} assembles them into one document (BENCH_greedy.json by
   default), which bench/compare gates against BENCH_trajectory.jsonl.

   Absolute numbers differ from the paper (synthetic sinks and workloads,
   different process parameters — see DESIGN.md); the comparisons mirror
   the paper's: who wins, by what factor, where the optimum falls.
   EXPERIMENTS.md records paper-vs-measured for every experiment. *)

let quick_mode = ref false

let quick () = !quick_mode

let stream_length () = if quick () then 1_000 else 10_000

let fig3_suites () =
  if quick () then [ "r1"; "r2" ] else [ "r1"; "r2"; "r3"; "r4"; "r5" ]

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

let case_cache : (string, Benchmarks.Suite.case) Hashtbl.t = Hashtbl.create 8

let case name =
  match Hashtbl.find_opt case_cache name with
  | Some c -> c
  | None ->
    let c = Benchmarks.Suite.by_name ~stream_length:(stream_length ()) name in
    Hashtbl.add case_cache name c;
    c

let pf = Printf.printf

(* Machine-readable output: sections deposit JSON fragments here (key,
   rendered value); {!run} writes them as one object at the end, so a
   partial run (--only) still yields a well-formed document containing
   exactly the sections that ran. *)
let results : (string * string) list ref = ref []

let record key json = results := (key, json) :: !results

let write_results out =
  if !results <> [] then begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Printf.sprintf "{\n  \"quick\": %b" (quick ()));
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",\n  \"%s\": %s" k v))
      (List.rev !results);
    Buffer.add_string buf "\n}\n";
    let oc = open_out out in
    Buffer.output_buffer oc buf;
    close_out oc;
    pf "\nWrote %s.\n" out
  end

(* ------------------------------------------------------------------ *)
(* Table 4: benchmark characteristics                                 *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: benchmark characteristics";
  let cases = List.map case (fig3_suites ()) in
  Util.Text_table.print (Benchmarks.Suite.characteristics_table cases);
  pf "\nPaper: 5 suites of 267/598/862/1903/3101 sinks, streams of thousands\n";
  pf "of instructions, Ave(M(I)) ~= 0.4 across all suites.\n"

(* ------------------------------------------------------------------ *)
(* Figure 3: buffered vs gated vs gate-reduced, switched cap and area  *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Figure 3: buffered vs gated vs gated+gate-reduction (r1-r5)";
  let open Util.Text_table in
  let sc =
    create ~title:"Switched capacitance (pF/cycle)"
      [ ("bench", Left); ("Buffered", Right); ("Gated", Right); ("Gate Red.", Right);
        ("Red./Buf.", Right) ]
  in
  let area =
    create ~title:"Area (10^3 um^2)"
      [ ("bench", Left); ("Buffered", Right); ("Gated", Right); ("Gate Red.", Right) ]
  in
  List.iter
    (fun name ->
      let { Benchmarks.Suite.config; profile; sinks; _ } = case name in
      let buffered = Gcr.Buffered.route config profile sinks in
      let gated = Gcr.Router.route config profile sinks in
      let reduced = Gcr.Gate_reduction.reduce_greedy gated in
      let w t = Gcr.Cost.w_total t /. 1000.0 in
      add_row sc
        [
          name;
          Printf.sprintf "%.2f" (w buffered);
          Printf.sprintf "%.2f" (w gated);
          Printf.sprintf "%.2f" (w reduced);
          Printf.sprintf "%.2f" (w reduced /. w buffered);
        ];
      let a t = (Gcr.Area.of_tree t).Gcr.Area.total /. 1000.0 in
      add_row area
        [
          name;
          Printf.sprintf "%.0f" (a buffered);
          Printf.sprintf "%.0f" (a gated);
          Printf.sprintf "%.0f" (a reduced);
        ])
    (fig3_suites ());
  print sc;
  print_newline ();
  print area;
  pf "\nPaper: without reduction the gated tree is WORSE than buffered (the\n";
  pf "star routing dominates); after reduction it consumes ~30%% less power,\n";
  pf "with a remaining area overhead.\n"

(* ------------------------------------------------------------------ *)
(* Figure 4: average module activity vs switched capacitance (r1)     *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Figure 4: average module activity vs switched capacitance (r1)";
  let spec = Benchmarks.Rbench.by_name "r1" in
  let open Util.Text_table in
  let table =
    create
      [ ("activity", Right); ("measured", Right); ("Gate Red. (pF)", Right);
        ("Buffered (pF)", Right); ("ratio", Right) ]
  in
  List.iter
    (fun usage ->
      let c = Benchmarks.Suite.case ~stream_length:(stream_length ()) ~usage spec in
      let { Benchmarks.Suite.config; profile; sinks; _ } = c in
      let buffered = Gcr.Buffered.route config profile sinks in
      let reduced =
        Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks)
      in
      let wg = Gcr.Cost.w_total reduced and wb = Gcr.Cost.w_total buffered in
      add_row table
        [
          Printf.sprintf "%.1f" usage;
          Printf.sprintf "%.3f" (Activity.Profile.avg_activity profile);
          Printf.sprintf "%.2f" (wg /. 1000.0);
          Printf.sprintf "%.2f" (wb /. 1000.0);
          Printf.sprintf "%.2f" (wg /. wb);
        ])
    [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ];
  print table;
  pf "\nPaper: the two curves converge as activity rises — gating only helps\n";
  pf "when modules idle; the gated tree dissipates at least the activity\n";
  pf "fraction of the ungated one.\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: gate reduction % vs switched capacitance and area (r1)   *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Figure 5: gate reduction vs switched capacitance and area (r1)";
  let { Benchmarks.Suite.config; profile; sinks; _ } = case "r1" in
  let gated = Gcr.Router.route config profile sinks in
  let open Util.Text_table in
  let table =
    create
      [ ("reduction %", Right); ("gates", Right); ("Controller tree (pF)", Right);
        ("Clock tree (pF)", Right); ("Total (pF)", Right); ("Area (10^3um^2)", Right) ]
  in
  let best = ref (infinity, 0) in
  List.iter
    (fun pct ->
      let tree =
        Gcr.Gate_reduction.reduce_fraction gated ~fraction:(float_of_int pct /. 100.0)
      in
      let w = Gcr.Cost.w_total tree in
      if w < fst !best then best := (w, pct);
      add_row table
        [
          string_of_int pct;
          string_of_int (Gcr.Gated_tree.gate_count tree);
          Printf.sprintf "%.2f" (Gcr.Cost.w_ctrl tree /. 1000.0);
          Printf.sprintf "%.2f" (Gcr.Cost.w_clock tree /. 1000.0);
          Printf.sprintf "%.2f" (w /. 1000.0);
          Printf.sprintf "%.0f" ((Gcr.Area.of_tree tree).Gcr.Area.total /. 1000.0);
        ])
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 95; 100 ];
  let named name tree =
    add_row table
      [
        name;
        string_of_int (Gcr.Gated_tree.gate_count tree);
        Printf.sprintf "%.2f" (Gcr.Cost.w_ctrl tree /. 1000.0);
        Printf.sprintf "%.2f" (Gcr.Cost.w_clock tree /. 1000.0);
        Printf.sprintf "%.2f" (Gcr.Cost.w_total tree /. 1000.0);
        Printf.sprintf "%.0f" ((Gcr.Area.of_tree tree).Gcr.Area.total /. 1000.0);
      ]
  in
  named "greedy" (Gcr.Gate_reduction.reduce_greedy gated);
  named "rules" (Gcr.Gate_reduction.reduce_rules gated);
  named "optimal(DP)" (Gcr.Gate_reduction.reduce_optimal gated);
  print table;
  pf "\nMeasured optimum at %d%% reduction.\n" (snd !best);
  pf "Paper: controller tree falls and clock tree rises as gates go; the\n";
  pf "total has an interior optimum (55%% on their r1 setup).\n"

(* ------------------------------------------------------------------ *)
(* Figure 6: centralized vs distributed controllers                   *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Figure 6 / Section 6: distributed gate controllers";
  let suites = if quick () then [ "r1" ] else [ "r1"; "r2" ] in
  List.iter
    (fun name ->
      let { Benchmarks.Suite.profile; sinks; spec; _ } = case name in
      let die = Benchmarks.Rbench.die spec in
      let open Util.Text_table in
      let table =
        create ~title:(Printf.sprintf "%s (die side %.1f mm)" name
                         (spec.Benchmarks.Rbench.die_side /. 1000.0))
          [ ("k", Right); ("ctrl wire (mm)", Right); ("G*D/(4 sqrt k) (mm)", Right);
            ("W ctrl (pF)", Right); ("W total (pF)", Right) ]
      in
      List.iter
        (fun k ->
          let controller = Gcr.Controller.distributed die ~k in
          let config = Gcr.Config.make ~controller ~die () in
          let tree =
            Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks)
          in
          let g = float_of_int (Gcr.Gated_tree.gate_count tree) in
          let analytic =
            g *. spec.Benchmarks.Rbench.die_side /. (4.0 *. sqrt (float_of_int k))
          in
          add_row table
            [
              string_of_int k;
              Printf.sprintf "%.2f" (Gcr.Cost.control_wirelength_total tree /. 1000.0);
              Printf.sprintf "%.2f" (analytic /. 1000.0);
              Printf.sprintf "%.2f" (Gcr.Cost.w_ctrl tree /. 1000.0);
              Printf.sprintf "%.2f" (Gcr.Cost.w_total tree /. 1000.0);
            ])
        [ 1; 4; 16; 64 ];
      print table;
      print_newline ())
    suites;
  pf "Paper: star routing area shrinks by a factor of sqrt(k) with k\n";
  pf "distributed controllers.\n"

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 6)                                    *)
(* ------------------------------------------------------------------ *)

let ablate_cost () =
  section
    "Ablation 1: merge ordering — Eq.(3) vs geometry-only (NN) vs\n\
     activity-only (Tellez-style, the paper's ref [5])";
  let suites = if quick () then [ "r1" ] else [ "r1"; "r2" ] in
  let open Util.Text_table in
  let table =
    create
      [ ("bench", Left); ("Eq.(3) W (pF)", Right); ("geometry W (pF)", Right);
        ("activity W (pF)", Right); ("Eq.(3) wire (mm)", Right);
        ("geometry wire (mm)", Right); ("activity wire (mm)", Right) ]
  in
  List.iter
    (fun name ->
      let { Benchmarks.Suite.config; profile; sinks; _ } = case name in
      let sc_tree =
        Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks)
      in
      (* same gating machinery on a purely geometric topology *)
      let nn_topo =
        Clocktree.Nn.topology config.Gcr.Config.tech
          ~edge_gate:(Some config.Gcr.Config.tech.Clocktree.Tech.and_gate)
          sinks
      in
      let nn_tree =
        Gcr.Gate_reduction.reduce_greedy
          (Gcr.Gated_tree.build config profile sinks nn_topo ~kind:(fun _ ->
               Gcr.Gated_tree.Gated))
      in
      (* ... and on an activity-only topology *)
      let act_tree =
        Gcr.Gate_reduction.reduce_greedy
          (Gcr.Activity_router.route config profile sinks)
      in
      let w t = Gcr.Cost.w_total t /. 1000.0 in
      let wire t = Gcr.Cost.clock_wirelength t /. 1000.0 in
      add_row table
        [
          name;
          Printf.sprintf "%.2f" (w sc_tree);
          Printf.sprintf "%.2f" (w nn_tree);
          Printf.sprintf "%.2f" (w act_tree);
          Printf.sprintf "%.1f" (wire sc_tree);
          Printf.sprintf "%.1f" (wire nn_tree);
          Printf.sprintf "%.1f" (wire act_tree);
        ])
    suites;
  print table;
  pf "\nEq.(3) sits between the extremes: geometry-only cannot see masking\n";
  pf "opportunity, activity-only pays ruinous wirelength.\n"

let ablate_ctrl_terms () =
  section
    "Ablation 2: controller-star terms in the merge cost (the paper's\n\
     extension over its prior work [4])";
  let suites = if quick () then [ "r1" ] else [ "r1"; "r2" ] in
  let open Util.Text_table in
  let table =
    create
      [ ("bench", Left); ("with star terms (pF)", Right);
        ("without star terms (pF)", Right); ("with/without", Right) ]
  in
  List.iter
    (fun name ->
      let { Benchmarks.Suite.config; profile; sinks; _ } = case name in
      let with_tree =
        Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks)
      in
      (* route blind to the controller, then cost fairly with it *)
      let blind_config = { config with Gcr.Config.control_weight = 0.0 } in
      let topo = Gcr.Router.route_topology_only blind_config profile sinks in
      let without_tree =
        Gcr.Gate_reduction.reduce_greedy
          (Gcr.Gated_tree.build config profile sinks topo ~kind:(fun _ ->
               Gcr.Gated_tree.Gated))
      in
      let ww = Gcr.Cost.w_total with_tree and wo = Gcr.Cost.w_total without_tree in
      add_row table
        [
          name;
          Printf.sprintf "%.2f" (ww /. 1000.0);
          Printf.sprintf "%.2f" (wo /. 1000.0);
          Printf.sprintf "%.3f" (ww /. wo);
        ])
    suites;
  print table

let ablate_forced_insertion () =
  section "Ablation 3: forced gate insertion (phase-delay guard)";
  let { Benchmarks.Suite.config; profile; sinks; _ } = case "r1" in
  let gated = Gcr.Router.route config profile sinks in
  let aggressive limit =
    {
      Gcr.Gate_reduction.default_thresholds with
      Gcr.Gate_reduction.activity_high = 0.0 (* rules want to drop everything *);
      force_cap_multiple = limit;
    }
  in
  let open Util.Text_table in
  let table =
    create
      [ ("force multiple", Left); ("gates kept", Right); ("W total (pF)", Right);
        ("phase delay (ps)", Right) ]
  in
  List.iter
    (fun (label, limit) ->
      let tree = Gcr.Gate_reduction.reduce_rules ~thresholds:(aggressive limit) gated in
      let r = Gcr.Report.of_tree tree in
      add_row table
        [
          label;
          string_of_int r.Gcr.Report.gate_count;
          Printf.sprintf "%.2f" (r.Gcr.Report.w_total /. 1000.0);
          Printf.sprintf "%.1f" (r.Gcr.Report.phase_delay /. 1000.0);
        ])
    [ ("off (inf)", infinity); ("20 x Cg", 20.0); ("5 x Cg", 5.0); ("2 x Cg", 2.0) ];
  print table;
  pf "\nForcing gates back in bounds the capacitance a single driver must\n";
  pf "push, trading switched capacitance for drive granularity.\n"

let ablate_sizing () =
  section "Ablation 4: gate sizing policies (the paper's 'gates can be sized')";
  let { Benchmarks.Suite.config; profile; sinks; _ } = case "r1" in
  let tree = Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks) in
  let open Util.Text_table in
  let table =
    create
      [ ("policy", Left); ("W (pF)", Right); ("clock wire (mm)", Right);
        ("phase delay (ps)", Right); ("cell area (10^3um^2)", Right) ]
  in
  let row name t =
    let r = Gcr.Report.of_tree t in
    add_row table
      [
        name;
        Printf.sprintf "%.2f" (r.Gcr.Report.w_total /. 1000.0);
        Printf.sprintf "%.1f" (r.Gcr.Report.clock_wirelength /. 1000.0);
        Printf.sprintf "%.1f" (r.Gcr.Report.phase_delay /. 1000.0);
        Printf.sprintf "%.1f"
          ((r.Gcr.Report.area.Gcr.Area.gates +. r.Gcr.Report.area.Gcr.Area.buffers)
          /. 1000.0);
      ]
  in
  row "unsized" tree;
  row "tapered (per level)" (Gcr.Sizing.tapered ~min_scale:1.0 tree);
  row "proportional (per gate)" (Gcr.Sizing.proportional tree);
  row "uniform 2x" (Gcr.Sizing.uniform tree 2.0);
  print table;
  pf "\nNaive per-gate sizing mixes sibling drive strengths; zero skew then\n";
  pf "demands balancing wire, inflating W. Tapered (one size per level)\n";
  pf "cuts delay while leaving the balance untouched.\n"

let ablate_skew_budget () =
  section "Ablation 5: bounded-skew routing (zero skew as a purchased constraint)";
  let { Benchmarks.Suite.config; profile; sinks; _ } = case "r1" in
  let open Util.Text_table in
  let table =
    create
      [ ("budget (ps)", Right); ("clock wire (mm)", Right); ("measured skew (ps)", Right);
        ("W (pF)", Right) ]
  in
  List.iter
    (fun ps ->
      let skew_budget = ps *. 1000.0 in
      let tree =
        if skew_budget > 0.0 then
          Gcr.Gate_reduction.reduce_greedy
            (Gcr.Router.route ~skew_budget config profile sinks)
        else Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks)
      in
      let r = Gcr.Report.of_tree tree in
      add_row table
        [
          Printf.sprintf "%.0f" ps;
          Printf.sprintf "%.2f" (r.Gcr.Report.clock_wirelength /. 1000.0);
          Printf.sprintf "%.3f" (r.Gcr.Report.skew /. 1000.0);
          Printf.sprintf "%.2f" (r.Gcr.Report.w_total /. 1000.0);
        ])
    [ 0.0; 1.0; 5.0; 20.0; 100.0 ];
  print table;
  pf "\nMeasured skew always stays within the budget; wire savings appear\n";
  pf "where exact zero skew would have snaked.\n"

let ablate_refinement () =
  section "Ablation 6: NNI topology refinement on top of the greedy merge";
  let sizes = if quick () then [ 64 ] else [ 64; 128 ] in
  let open Util.Text_table in
  let table =
    create
      [ ("sinks", Right); ("greedy W (pF)", Right); ("refined W (pF)", Right);
        ("moves", Right); ("after reduction: greedy (pF)", Right);
        ("after reduction: refined (pF)", Right) ]
  in
  List.iter
    (fun n ->
      let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
      let { Benchmarks.Suite.config; profile; sinks; _ } =
        Benchmarks.Suite.case ~stream_length:2_000 spec
      in
      let tree = Gcr.Router.route config profile sinks in
      let refined, stats = Gcr.Refine.nni ~max_passes:2 tree in
      let red t = Gcr.Cost.w_total (Gcr.Gate_reduction.reduce_greedy t) /. 1000.0 in
      add_row table
        [
          string_of_int n;
          Printf.sprintf "%.2f" (stats.Gcr.Refine.w_before /. 1000.0);
          Printf.sprintf "%.2f" (stats.Gcr.Refine.w_after /. 1000.0);
          string_of_int stats.Gcr.Refine.moves;
          Printf.sprintf "%.2f" (red tree);
          Printf.sprintf "%.2f" (red refined);
        ])
    sizes;
  print table;
  pf "\nHill-climbing repairs local mistakes of the greedy merge order; the\n";
  pf "residual advantage after gate reduction shows how much of it the\n";
  pf "reduction pass would have recovered anyway.\n"

let stream_sensitivity () =
  section "Stream-length sensitivity (the paper's Sec. 3.2 cost argument)";
  let n = 96 in
  let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
  let sinks = Benchmarks.Rbench.sinks spec in
  let rtl =
    Benchmarks.Workload.make_rtl ~n_modules:n ~n_instructions:32 ~usage:0.4
      ~n_groups:spec.Benchmarks.Rbench.n_groups
      ~seed:(spec.Benchmarks.Rbench.seed * 13) ()
  in
  let model = Benchmarks.Workload.cpu_model rtl in
  let config = Gcr.Config.make ~die:(Benchmarks.Rbench.die spec) () in
  let exact_profile = Activity.Profile.of_model model in
  let tree = Gcr.Router.route config exact_profile sinks in
  let w_exact = Gcr.Cost.w_total tree in
  let open Util.Text_table in
  let table =
    create [ ("stream cycles", Right); ("estimated W (pF)", Right); ("error", Right) ]
  in
  List.iter
    (fun cycles ->
      let profile = Activity.Profile.generate model ~seed:71 ~length:cycles in
      let recost =
        Gcr.Gated_tree.build config profile sinks tree.Gcr.Gated_tree.topo
          ~kind:(fun _ -> Gcr.Gated_tree.Gated)
      in
      let w = Gcr.Cost.w_total recost in
      add_row table
        [
          string_of_int cycles;
          Printf.sprintf "%.2f" (w /. 1000.0);
          Printf.sprintf "%+.2f%%" (100.0 *. ((w -. w_exact) /. w_exact));
        ])
    (if quick () then [ 100; 1_000; 10_000 ] else [ 100; 300; 1_000; 3_000; 10_000; 30_000 ]);
  print table;
  pf "\nExact (closed-form Markov) W = %.2f pF. A few thousand cycles give\n"
    (w_exact /. 1000.0);
  pf "percent-level accuracy; the one-scan tables make even very long\n";
  pf "streams cheap, which is the paper's point.\n"

let variation_study () =
  section "Process variation: how robust is the zero-skew guarantee?";
  let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:128 in
  let { Benchmarks.Suite.config; profile; sinks; _ } =
    Benchmarks.Suite.case ~stream_length:2_000 spec
  in
  let tree = Gcr.Router.route config profile sinks in
  let runs = if quick () then 30 else 200 in
  let open Util.Text_table in
  let table =
    create
      [ ("wire sigma", Right); ("mean skew (ps)", Right); ("p95 skew (ps)", Right);
        ("max skew (ps)", Right); ("of phase delay", Right) ]
  in
  List.iter
    (fun sigma ->
      let r = Gsim.Variation.monte_carlo ~seed:3 ~sigma ~runs tree in
      add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. sigma);
          Printf.sprintf "%.2f" (r.Gsim.Variation.mean_skew /. 1000.0);
          Printf.sprintf "%.2f" (r.Gsim.Variation.p95_skew /. 1000.0);
          Printf.sprintf "%.2f" (r.Gsim.Variation.max_skew /. 1000.0);
          Printf.sprintf "%.2f%%"
            (100.0 *. r.Gsim.Variation.p95_skew /. r.Gsim.Variation.nominal_delay);
        ])
    [ 0.01; 0.03; 0.05; 0.10 ];
  print table;
  pf "\nNominal zero skew is exactly that — nominal; wire variation turns it\n";
  pf "into a distribution (%d Monte-Carlo runs per row). Any skew budget a\n" runs;
  pf "design signs off must leave this much margin.\n"

(* ------------------------------------------------------------------ *)
(* End-to-end validation spot check                                   *)
(* ------------------------------------------------------------------ *)

let validation () =
  section "Cross-validation: analytic cost vs cycle-accurate simulation (r1)";
  let { Benchmarks.Suite.config; profile; sinks; _ } = case "r1" in
  let reduced =
    Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks)
  in
  let c = Gsim.Check.compare reduced in
  Format.printf "%a@." Gsim.Check.pp c;
  Gsim.Check.validate reduced;
  pf "OK: table-driven probabilities reproduce the simulated switched\n";
  pf "capacitance exactly (same stream, same counts).\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro/kernel benchmarks: one Test.make per experiment     *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  (* small shared instances so each test runs in microseconds-to-millis *)
  let spec64 = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:64 in
  let case64 = Benchmarks.Suite.case ~stream_length:1_000 spec64 in
  let { Benchmarks.Suite.config; profile; sinks; _ } = case64 in
  let routed = Gcr.Router.route config profile sinks in
  let stream = Activity.Profile.stream profile in
  let n_mods = Activity.Profile.n_modules profile in
  let big_set = Activity.Module_set.of_list n_mods [ 0; 13; 27; 41; 63 ] in
  let die = Benchmarks.Rbench.die spec64 in
  let distributed = Gcr.Controller.distributed die ~k:16 in
  let tech = config.Gcr.Config.tech in
  let branch =
    { Clocktree.Zskew.delay = 120.0; cap = 40.0; gate = Some tech.Clocktree.Tech.and_gate }
  in
  [
    (* Table 4 kernel: one-scan table construction *)
    Test.make ~name:"table4/profile-build"
      (Staged.stage (fun () -> ignore (Activity.Profile.of_stream stream)));
    (* Figure 3 kernel: full gated route of a 64-sink suite *)
    Test.make ~name:"fig3/route-64"
      (Staged.stage (fun () -> ignore (Gcr.Router.route config profile sinks)));
    (* Figure 4 kernel: the probability queries behind every enable *)
    Test.make ~name:"fig4/p-any"
      (Staged.stage (fun () -> ignore (Activity.Profile.p profile big_set)));
    Test.make ~name:"fig4/ptr"
      (Staged.stage (fun () -> ignore (Activity.Profile.ptr profile big_set)));
    (* Figure 5 kernel: a half-fraction gate reduction *)
    Test.make ~name:"fig5/reduce-half"
      (Staged.stage (fun () ->
           ignore (Gcr.Gate_reduction.reduce_fraction routed ~fraction:0.5)));
    (* Figure 6 kernel: routing against a 16-way distributed controller *)
    Test.make ~name:"fig6/route-distributed"
      (Staged.stage (fun () ->
           let config = Gcr.Config.make ~controller:distributed ~die () in
           ignore (Gcr.Router.route config profile sinks)));
    (* probability-kernel micro-benchmarks: table scans vs the
       instruction-hit signature kernel, same set *)
    Test.make ~name:"micro/sig-p"
      (let kern =
         match Activity.Profile.signature_kernel profile with
         | Some k -> k
         | None -> assert false
       in
       let s = Activity.Signature.of_set kern big_set in
       Staged.stage (fun () -> ignore (Activity.Signature.p kern s)));
    Test.make ~name:"micro/sig-ptr"
      (let kern =
         match Activity.Profile.signature_kernel profile with
         | Some k -> k
         | None -> assert false
       in
       let s = Activity.Signature.of_set kern big_set in
       Staged.stage (fun () -> ignore (Activity.Signature.ptr kern s)));
    (* substrate micro-benchmarks *)
    Test.make ~name:"micro/zskew-split"
      (Staged.stage (fun () -> ignore (Clocktree.Zskew.split tech branch branch ~dist:300.0)));
    Test.make ~name:"micro/simulate-1k-cycles"
      (Staged.stage (fun () -> ignore (Gsim.Gate_sim.run routed stream)));
    Test.make ~name:"micro/tapered-sizing"
      (Staged.stage (fun () -> ignore (Gcr.Sizing.tapered routed)));
    Test.make ~name:"micro/power-trace"
      (Staged.stage (fun () ->
           ignore (Gsim.Trace.power_trace routed stream ~window:100)));
  ]

let run_bechamel () =
  section "Bechamel kernel timings (one per table/figure + micro)";
  let open Bechamel in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick () then 0.25 else 1.0))
      ~kde:None ()
  in
  let tests = Test.make_grouped ~name:"gcr" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns = match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      rows := (name, ns, r2) :: !rows)
    results;
  let open Util.Text_table in
  let table = create [ ("kernel", Left); ("time/run", Right); ("r^2", Right) ] in
  let pretty ns =
    if ns >= 1.0e9 then Printf.sprintf "%.2f s" (ns /. 1.0e9)
    else if ns >= 1.0e6 then Printf.sprintf "%.2f ms" (ns /. 1.0e6)
    else if ns >= 1.0e3 then Printf.sprintf "%.2f us" (ns /. 1.0e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns, r2) -> add_row table [ name; pretty ns; Printf.sprintf "%.3f" r2 ])
    (List.sort compare !rows);
  print table

(* ------------------------------------------------------------------ *)
(* Scaling: the O(K N^2 log N) construction in practice               *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section "Construction-time scaling (paper Sec. 4.2 complexity)";
  let sizes = if quick () then [ 32; 64; 128 ] else [ 64; 128; 256; 512; 1024 ] in
  let open Util.Text_table in
  let table = create [ ("sinks", Right); ("route (ms)", Right); ("reduce (ms)", Right) ] in
  List.iter
    (fun n ->
      let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
      let { Benchmarks.Suite.config; profile; sinks; _ } =
        Benchmarks.Suite.case ~stream_length:1_000 spec
      in
      let t0 = Util.Obs.Clock.now () in
      let tree = Gcr.Router.route config profile sinks in
      let t1 = Util.Obs.Clock.now () in
      ignore (Gcr.Gate_reduction.reduce_greedy tree);
      let t2 = Util.Obs.Clock.now () in
      add_row table
        [
          string_of_int n;
          Printf.sprintf "%.1f" (1000.0 *. (t1 -. t0));
          Printf.sprintf "%.1f" (1000.0 *. (t2 -. t1));
        ])
    sizes;
  print table

(* ------------------------------------------------------------------ *)
(* Greedy-merge scaling: NN-heap (+ spatial grid) vs all-pairs heap   *)
(* ------------------------------------------------------------------ *)

(* The pre-optimization activity-only merge, replicated inline as the
   baseline: a fresh Module_set.union + Profile.p per candidate
   evaluation (no memoization, no scratch buffers) on the all-pairs
   heap. *)
let old_activity_topology (config : Gcr.Config.t) profile sinks =
  let tech = config.Gcr.Config.tech in
  let n = Array.length sinks in
  let grow =
    Clocktree.Grow.create tech ~edge_gate:(Some tech.Clocktree.Tech.and_gate) sinks
  in
  let enables = Array.make ((2 * n) - 1) None in
  for v = 0 to n - 1 do
    enables.(v) <- Some (Gcr.Enable.of_sink profile sinks.(v))
  done;
  let enable v = match enables.(v) with Some e -> e | None -> assert false in
  let tie = 1e-6 /. (1.0 +. Geometry.Bbox.width config.Gcr.Config.die) in
  let cost a b =
    let u =
      Activity.Module_set.union (enable a).Gcr.Enable.mods (enable b).Gcr.Enable.mods
    in
    Activity.Profile.p profile u +. (tie *. Clocktree.Grow.dist grow a b)
  in
  let merge a b =
    let k = Clocktree.Grow.merge grow a b in
    enables.(k) <- Some (Gcr.Enable.merge profile (enable a) (enable b));
    k
  in
  let _root = Clocktree.Greedy.merge_all_dense ~n ~cost ~merge in
  Clocktree.Grow.topology grow

let greedy_scaling () =
  section "Greedy-merge scaling: NN-heap (+ spatial grid) vs all-pairs heap";
  let geo_sizes = if quick () then [ 100; 250 ] else [ 250; 500; 1000; 2000; 3101; 6000 ] in
  let act_sizes = if quick () then [ 100 ] else [ 250; 500; 1000; 2000; 4000; 6000 ] in
  let geo_dense_cap = if quick () then 250 else 3101 in
  let act_dense_cap = if quick () then 100 else 2000 in
  let time f =
    let t0 = Util.Obs.Clock.now () in
    let r = f () in
    (r, Util.Obs.Clock.now () -. t0)
  in
  let js = Buffer.create 1024 in
  let open Util.Text_table in
  (* geometric: Nn spatial grid vs dense all-pairs heap *)
  let geo =
    create ~title:"Geometric merge (Grow.dist cost)"
      [ ("sinks", Right); ("spatial (s)", Right); ("all-pairs (s)", Right);
        ("speedup", Right); ("wirelength rel err", Right) ]
  in
  Buffer.add_string js "[\n";
  let first = ref true in
  List.iter
    (fun n ->
      let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
      let sinks = Benchmarks.Rbench.sinks spec in
      let tech = Clocktree.Tech.default in
      let wirelength topo =
        Clocktree.Mseg.total_wirelength
          (Clocktree.Mseg.build tech topo ~sinks ~gate_on_edge:(fun _ -> None))
      in
      let fast_topo, fast_t =
        time (fun () -> Clocktree.Nn.topology tech ~edge_gate:None sinks)
      in
      let dense =
        if n <= geo_dense_cap then begin
          let dense_topo, dense_t =
            time (fun () -> Clocktree.Nn.topology_dense tech ~edge_gate:None sinks)
          in
          let wf = wirelength fast_topo and wd = wirelength dense_topo in
          Some (dense_t, Float.abs (wf -. wd) /. (1.0 +. Float.abs wd))
        end
        else None
      in
      (match dense with
      | Some (dense_t, err) ->
        add_row geo
          [ string_of_int n; Printf.sprintf "%.3f" fast_t; Printf.sprintf "%.3f" dense_t;
            Printf.sprintf "%.1fx" (dense_t /. fast_t); Printf.sprintf "%.2e" err ];
        if not !first then Buffer.add_string js ",\n";
        Buffer.add_string js
          (Printf.sprintf
             "    {\"n\": %d, \"spatial_s\": %.6f, \"dense_s\": %.6f, \"speedup\": \
              %.2f, \"wirelength_rel_err\": %.3e}"
             n fast_t dense_t (dense_t /. fast_t) err)
      | None ->
        add_row geo
          [ string_of_int n; Printf.sprintf "%.3f" fast_t; "-"; "-"; "-" ];
        if not !first then Buffer.add_string js ",\n";
        Buffer.add_string js
          (Printf.sprintf
             "    {\"n\": %d, \"spatial_s\": %.6f, \"dense_s\": null, \"speedup\": \
              null, \"wirelength_rel_err\": null}"
             n fast_t));
      first := false)
    geo_sizes;
  Buffer.add_string js "\n  ]";
  record "geometric" (Buffer.contents js);
  Buffer.clear js;
  print geo;
  print_newline ();
  (* activity: signature kernel + bound-pruned NN-heap vs the unmemoized
     all-pairs baseline *)
  let act =
    create ~title:"Activity-only merge (P(union) cost, Tellez-style)"
      [ ("sinks", Right); ("signature (s)", Right); ("old dense (s)", Right);
        ("speedup", Right); ("W_total rel err", Right) ]
  in
  Buffer.add_string js "[\n";
  first := true;
  List.iter
    (fun n ->
      let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
      let { Benchmarks.Suite.config; profile; sinks; _ } =
        Benchmarks.Suite.case ~stream_length:1_000 spec
      in
      let w topo =
        Gcr.Cost.w_total
          (Gcr.Gated_tree.build config profile sinks topo ~kind:(fun _ ->
               Gcr.Gated_tree.Gated))
      in
      let fast_topo, fast_t =
        time (fun () -> Gcr.Activity_router.topology config profile sinks)
      in
      if n <= act_dense_cap then begin
        let old_topo, old_t = time (fun () -> old_activity_topology config profile sinks) in
        let wf = w fast_topo and wo = w old_topo in
        let err = Float.abs (wf -. wo) /. (1.0 +. Float.abs wo) in
        add_row act
          [ string_of_int n; Printf.sprintf "%.3f" fast_t; Printf.sprintf "%.3f" old_t;
            Printf.sprintf "%.1fx" (old_t /. fast_t); Printf.sprintf "%.2e" err ];
        if not !first then Buffer.add_string js ",\n";
        Buffer.add_string js
          (Printf.sprintf
             "    {\"n\": %d, \"signature_s\": %.6f, \"old_dense_s\": %.6f, \
              \"speedup\": %.2f, \"w_total_rel_err\": %.3e}"
             n fast_t old_t (old_t /. fast_t) err)
      end
      else begin
        add_row act
          [ string_of_int n; Printf.sprintf "%.3f" fast_t; "-"; "-"; "-" ];
        if not !first then Buffer.add_string js ",\n";
        Buffer.add_string js
          (Printf.sprintf
             "    {\"n\": %d, \"signature_s\": %.6f, \"old_dense_s\": null, \
              \"speedup\": null, \"w_total_rel_err\": null}"
             n fast_t)
      end;
      first := false)
    act_sizes;
  Buffer.add_string js "\n  ]";
  record "activity" (Buffer.contents js);
  print act;
  print_newline ();
  pf "The all-pairs heap seeds n(n-1)/2 entries (~4.8M at 3101 sinks); the\n";
  pf "NN-heap keeps one entry per active root and asks the grid (geometric)\n";
  pf "or a bound-pruned signature scan (activity) for each root's best\n";
  pf "partner.\n"

(* ------------------------------------------------------------------ *)
(* Sharded region-parallel routing: scaling to 10^5 sinks              *)
(* ------------------------------------------------------------------ *)

(* Sizes beyond the r-benchmarks need the grouped module universe
   (Suite.case_grouped): per-sink modules would cost O(n) bits per
   enable set — gigabytes of bitsets at 10^5 sinks. *)
let shard_case n =
  let spec =
    Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n
  in
  let spec = { spec with Benchmarks.Rbench.n_groups = max 4 (min 1024 (n / 96)) } in
  Benchmarks.Suite.case_grouped ~stream_length:1_000 spec

let shard_scaling () =
  section "Sharded region-parallel routing (flat arena, 10^4-10^5 sinks)";
  let sizes = if quick () then [ 10_000 ] else [ 10_000; 100_000 ] in
  let time f =
    let t0 = Util.Obs.Clock.now () in
    let r = f () in
    (r, Util.Obs.Clock.now () -. t0)
  in
  let open Util.Text_table in
  let table =
    create ~title:"Sharded topology construction (single domain vs pool)"
      [ ("sinks", Right); ("regions", Right); ("domains", Right);
        ("1 domain (s)", Right); ("pool (s)", Right); ("speedup", Right) ]
  in
  let js = Buffer.create 512 in
  Buffer.add_string js "{";
  let points = Buffer.create 256 in
  List.iteri
    (fun i n ->
      let { Benchmarks.Suite.config; profile; sinks; _ } = shard_case n in
      let domains = Util.Parallel.default_domains () in
      let regions = Gcr.Shard_router.auto_shards ~n in
      let _, t1 =
        time (fun () ->
            Gcr.Shard_router.route_topology ~domains:1 config profile sinks)
      in
      let _, tp =
        time (fun () -> Gcr.Shard_router.route_topology config profile sinks)
      in
      let speedup = t1 /. tp in
      add_row table
        [
          string_of_int n; string_of_int regions; string_of_int domains;
          Printf.sprintf "%.2f" t1; Printf.sprintf "%.2f" tp;
          Printf.sprintf "%.2fx" speedup;
        ];
      (* The first (10^4) point gates the trajectory: per-sink ns keys at
         top level (the compare gate skips lists), both domain settings. *)
      if i = 0 then
        Buffer.add_string js
          (Printf.sprintf
             "\"n\": %d, \"regions\": %d, \"domains\": %d, \
              \"single_domain_per_sink_ns\": %.1f, \"pool_per_sink_ns\": \
              %.1f, \"speedup\": %.3f"
             n regions domains
             (1e9 *. t1 /. float_of_int n)
             (1e9 *. tp /. float_of_int n)
             speedup);
      if i > 0 then Buffer.add_string points ", ";
      Buffer.add_string points
        (Printf.sprintf
           "{\"n\": %d, \"regions\": %d, \"domains\": %d, \"single_s\": %.3f, \
            \"pool_s\": %.3f, \"speedup\": %.3f}"
           n regions domains t1 tp speedup))
    sizes;
  Buffer.add_string js
    (Printf.sprintf ", \"points\": [%s]" (Buffer.contents points));
  print table;
  (* Cost fidelity: the stitch's merges never cross a region boundary, so
     the sharded tree pays a bounded switched-capacitance premium over
     the flat greedy route. Measured where the flat route is affordable. *)
  if not (quick ()) then begin
    let n = 3_000 in
    let { Benchmarks.Suite.config; profile; sinks; _ } = shard_case n in
    let flat, flat_t = time (fun () -> Gcr.Router.route config profile sinks) in
    let sharded, shard_t =
      time (fun () -> Gcr.Shard_router.route config profile sinks)
    in
    let wf = Gcr.Cost.w_total flat and ws = Gcr.Cost.w_total sharded in
    pf "\nCost fidelity at %d sinks: flat W %.2f pF (%.1f s), sharded W %.2f \
        pF (%.1f s), ratio %.4f\n"
      n (wf /. 1000.0) flat_t (ws /. 1000.0) shard_t (ws /. wf);
    Buffer.add_string js
      (Printf.sprintf ", \"cost_n\": %d, \"cost_ratio\": %.6f" n (ws /. wf))
  end;
  Buffer.add_string js "}";
  record "shard_scaling" (Buffer.contents js);
  pf "\nEach region is routed by the flat NN-heap engine on its own arena;\n";
  pf "the stitch replays region merge lists into one forest and greedy-\n";
  pf "merges the region roots (same Eq.(3) cost). Speedup reflects the\n";
  pf "machine: a single-core runner shows ~1.0x regardless of shards.\n"

(* ------------------------------------------------------------------ *)
(* Gate sharing: enable-set minimization on the reduced trees          *)
(* ------------------------------------------------------------------ *)

let gate_share_bench () =
  section "Gate sharing: shared enables vs per-subtree gates (r-benchmarks)";
  (* r4/r5 put the pass at the paper's 1903/3101-sink scale; r1 is the
     quick-mode point the trajectory gates. *)
  let suites = if quick () then [ "r1" ] else [ "r1"; "r4"; "r5" ] in
  let open Util.Text_table in
  let table =
    create ~title:"share pass at the cost-free settings (min_instances=1, eps=0)"
      [ ("bench", Left); ("sinks", Right); ("gates", Right); ("shared", Right);
        ("groups", Right); ("W ratio", Right); ("pass (ms)", Right) ]
  in
  let js = Buffer.create 256 in
  Buffer.add_string js "{";
  let points = Buffer.create 256 in
  List.iteri
    (fun i name ->
      let { Benchmarks.Suite.config; profile; sinks; _ } = case name in
      let reduced =
        Gcr.Gate_reduction.reduce_greedy (Gcr.Router.route config profile sinks)
      in
      let n = Array.length sinks in
      let t0 = Util.Obs.Clock.now () in
      let shared, stats = Gcr.Gate_share.share_with_stats reduced in
      let dt = Util.Obs.Clock.now () -. t0 in
      let { Gcr.Gate_share.gates_before; gates_after; groups; _ } = stats in
      let ratio = Gcr.Cost.w_total shared /. Gcr.Cost.w_total reduced in
      add_row table
        [
          name; string_of_int n; string_of_int gates_before;
          string_of_int gates_after; string_of_int groups;
          Printf.sprintf "%.4f" ratio;
          Printf.sprintf "%.2f" (1e3 *. dt);
        ];
      (* The first point gates the trajectory: scalar per-sink ns at top
         level (the compare gate skips the per-suite points list). *)
      if i = 0 then
        Buffer.add_string js
          (Printf.sprintf
             "\"n\": %d, \"gates_before\": %d, \"gates_after\": %d, \
              \"groups\": %d, \"w_ratio\": %.6f, \"share_per_sink_ns\": %.1f"
             n gates_before gates_after groups ratio
             (1e9 *. dt /. float_of_int n));
      if i > 0 then Buffer.add_string points ", ";
      Buffer.add_string points
        (Printf.sprintf
           "{\"bench\": \"%s\", \"n\": %d, \"gates_before\": %d, \
            \"gates_after\": %d, \"groups\": %d, \"w_ratio\": %.6f, \
            \"pass_s\": %.4f}"
           name n gates_before gates_after groups ratio dt))
    suites;
  Buffer.add_string js
    (Printf.sprintf ", \"points\": [%s]}" (Buffer.contents points));
  record "gate_share" (Buffer.contents js);
  print table;
  pf "\nAt (1,0) the pass only removes gates whose waveform coincides\n";
  pf "cycle-for-cycle with their governor's and groups exact-equal enables,\n";
  pf "so the W ratio stays <= 1 up to embedding re-balancing noise; the\n";
  pf "gates and shared columns are the per-subtree vs merged gate counts.\n"

(* ------------------------------------------------------------------ *)
(* Probability-kernel microbenchmark                                   *)
(* ------------------------------------------------------------------ *)

(* The per-byte count-sum reference kernel: the design the word-parallel
   weight planes replaced. Byte [j]'s table row maps each of the 256
   byte values to the weight sum of its set bits, so a query is one
   table add per byte of the bitset. Kept here (not in lib/) purely for
   a same-run A/B against the popcount kernels — both compute identical
   integer sums, divided identically, so equality is exact. *)
module Byte_ref = struct
  type t = {
    tbl : int array; (* nbytes * 256, [j lsl 8 lor v] -> weight sum *)
    nbytes : int;
    total : int;
  }

  let build n weight_of total =
    let nbytes = max 1 ((n + 7) / 8) in
    let tbl = Array.make (nbytes * 256) 0 in
    for i = 0 to n - 1 do
      let w = weight_of i in
      if w <> 0 then begin
        let j = i lsr 3 and bit = 1 lsl (i land 7) in
        for v = 0 to 255 do
          if v land bit <> 0 then
            tbl.((j lsl 8) lor v) <- tbl.((j lsl 8) lor v) + w
        done
      end
    done;
    { tbl; nbytes; total }

  (* Repack a 62-bit-per-word signature bitset as plain bytes, the shape
     the byte tables index. Done once per signature, outside timing. *)
  let bytes_of_words words n =
    let b = Bytes.make (max 1 ((n + 7) / 8)) '\000' in
    for i = 0 to n - 1 do
      if words.(i / 62) land (1 lsl (i mod 62)) <> 0 then
        Bytes.unsafe_set b (i lsr 3)
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))
    done;
    b

  let sum t bs =
    let acc = ref 0 in
    for j = 0 to t.nbytes - 1 do
      acc :=
        !acc
        + Array.unsafe_get t.tbl
            ((j lsl 8) lor Char.code (Bytes.unsafe_get bs j))
    done;
    !acc

  let query t bs = float_of_int (sum t bs) /. float_of_int t.total

  let sum2_xor t now next =
    let acc = ref 0 in
    for j = 0 to t.nbytes - 1 do
      acc :=
        !acc
        + Array.unsafe_get t.tbl
            ((j lsl 8)
            lor (Char.code (Bytes.unsafe_get now j)
                lxor Char.code (Bytes.unsafe_get next j)))
    done;
    !acc

  let query_xor t now next =
    float_of_int (sum2_xor t now next) /. float_of_int t.total
end

let kernel_micro () =
  section "Probability kernels: table scans vs byte tables vs popcount planes";
  let open Util.Text_table in
  let micro_n = if quick () then 100 else 2000 in
  let spec =
    Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:micro_n
  in
  let { Benchmarks.Suite.profile; _ } =
    Benchmarks.Suite.case ~stream_length:1_000 spec
  in
  let ift = Activity.Profile.ift profile and imatt = Activity.Profile.imatt profile in
  let kern =
    match Activity.Profile.signature_kernel profile with
    | Some k -> k
    | None -> assert false
  in
  let n_mods = Activity.Profile.n_modules profile in
  let prng = Util.Prng.create 42 in
  let n_sets = 256 in
  let sets =
    Array.init n_sets (fun _ ->
        let s = ref (Activity.Module_set.empty n_mods) in
        for _ = 1 to 16 do
          s := Activity.Module_set.add !s (Util.Prng.int prng n_mods)
        done;
        !s)
  in
  let sigs = Array.map (Activity.Signature.of_set kern) sets in
  let k_instr = Activity.Rtl.n_instructions (Activity.Ift.rtl ift) in
  let rows = Activity.Imatt.rows imatt in
  let p_ref =
    Byte_ref.build k_instr (Activity.Ift.count ift) (Activity.Ift.total_cycles ift)
  in
  let r_ref =
    Byte_ref.build (Array.length rows)
      (fun r -> rows.(r).Activity.Imatt.count)
      (Activity.Imatt.total_pairs imatt)
  in
  let hbytes =
    Array.map (fun s -> Byte_ref.bytes_of_words s.Activity.Signature.hits k_instr) sigs
  in
  let nowb =
    Array.map
      (fun s -> Byte_ref.bytes_of_words s.Activity.Signature.now (Array.length rows))
      sigs
  in
  let nextb =
    Array.map
      (fun s -> Byte_ref.bytes_of_words s.Activity.Signature.next (Array.length rows))
      sigs
  in
  (* Same-run honesty check: every kernel on every probe set computes the
     same float as the table scans, bit for bit. *)
  let outs = Array.make n_sets 0.0 and outs2 = Array.make n_sets 0.0 in
  Activity.Signature.p_batch kern sigs outs;
  Activity.Signature.ptr_batch kern sigs outs2;
  for i = 0 to n_sets - 1 do
    let p_scan = Activity.Ift.p_any ift sets.(i) in
    let ptr_scan = Activity.Imatt.ptr imatt sets.(i) in
    assert (Activity.Signature.p kern sigs.(i) = p_scan);
    assert (outs.(i) = p_scan);
    assert (Byte_ref.query p_ref hbytes.(i) = p_scan);
    assert (Activity.Signature.ptr kern sigs.(i) = ptr_scan);
    assert (outs2.(i) = ptr_scan);
    assert (Byte_ref.query_xor r_ref nowb.(i) nextb.(i) = ptr_scan)
  done;
  (* Timing: each measured function fills out.(0..n_sets-1) for the whole
     probe array — the shape production uses (batch kernels are one call;
     scalar kernels loop without a serial float dependency between
     elements) — repeated [rounds] times, best of [reps] runs. *)
  let out = Array.make n_sets 0.0 in
  let rounds = if quick () then 64 else 1_024 in
  let reps = 3 in
  let per_query f =
    f ();
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Util.Obs.Clock.now () in
      for _ = 1 to rounds do
        f ()
      done;
      let dt = Util.Obs.Clock.now () -. t0 in
      if dt < !best then best := dt
    done;
    ignore (Sys.opaque_identity out.(0));
    1e9 *. !best /. float_of_int (rounds * n_sets)
  in
  let next i = (i + 1) land (n_sets - 1) in
  let fill f =
   fun () ->
    for i = 0 to n_sets - 1 do
      Array.unsafe_set out i (f i)
    done
  in
  let kernel_rows =
    [
      ("p_any_ns", "Ift.p_any (table scan)",
       per_query (fill (fun i -> Activity.Ift.p_any ift sets.(i))));
      ("ref_p_ns", "byte tables P (replaced design)",
       per_query (fill (fun i -> Byte_ref.query p_ref hbytes.(i))));
      ("sig_p_scalar_ns", "Signature.p (scalar)",
       per_query (fill (fun i -> Activity.Signature.p kern sigs.(i))));
      ("sig_p_ns", "Signature.p_batch",
       per_query (fun () -> Activity.Signature.p_batch kern sigs out));
      ("ptr_ns", "Imatt.ptr (table scan)",
       per_query (fill (fun i -> Activity.Imatt.ptr imatt sets.(i))));
      ("ref_ptr_ns", "byte tables Ptr (replaced design)",
       per_query (fill (fun i -> Byte_ref.query_xor r_ref nowb.(i) nextb.(i))));
      ("sig_ptr_scalar_ns", "Signature.ptr (scalar)",
       per_query (fill (fun i -> Activity.Signature.ptr kern sigs.(i))));
      ("sig_ptr_ns", "Signature.ptr_batch",
       per_query (fun () -> Activity.Signature.ptr_batch kern sigs out));
      ("sig_p_union_scalar_ns", "Signature.p_union (scalar)",
       per_query
         (fill (fun i -> Activity.Signature.p_union kern sigs.(i) sigs.(next i))));
      ("sig_p_union_ns", "Signature.p_union_batch",
       per_query (fun () -> Activity.Signature.p_union_batch kern sigs.(0) sigs out));
    ]
  in
  let micro =
    create
      ~title:
        (Printf.sprintf "Probability kernels (%d-module universe, ns/query)"
           n_mods)
      [ ("kernel", Left); ("ns/query", Right) ]
  in
  List.iter
    (fun (_, label, ns) -> add_row micro [ label; Printf.sprintf "%.1f" ns ])
    kernel_rows;
  print micro;
  let js = Buffer.create 256 in
  Buffer.add_string js (Printf.sprintf "{\"n_modules\": %d" n_mods);
  List.iter
    (fun (key, _, ns) -> Buffer.add_string js (Printf.sprintf ", \"%s\": %.1f" key ns))
    kernel_rows;
  Buffer.add_string js "}";
  record "kernel_micro" (Buffer.contents js);
  pf "\nAll rows answer the same queries over the same %d probe sets;\n" n_sets;
  pf "every kernel's floats were asserted bit-for-bit equal to the table\n";
  pf "scans before timing. sig_*_ns rows are the batched entry points the\n";
  pf "router actually calls; *_scalar_ns are the one-query forms.\n"

(* ------------------------------------------------------------------ *)
(* Guard overhead: Flow.run vs run_checked Default vs Paranoid         *)
(* ------------------------------------------------------------------ *)

let guard_overhead () =
  section "Checked-pipeline overhead: run vs run_checked (default / paranoid)";
  let n = if quick () then 250 else 2000 in
  let reps = if quick () then 2 else 3 in
  let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
  let { Benchmarks.Suite.sinks; profile; config; _ } =
    Benchmarks.Suite.case ~stream_length:1_000 spec
  in
  let best f =
    let t = ref infinity in
    for _ = 1 to reps do
      let t0 = Util.Obs.Clock.now () in
      Sys.opaque_identity (f ()) |> ignore;
      t := Float.min !t (Util.Obs.Clock.now () -. t0)
    done;
    !t
  in
  let plain = best (fun () -> Gcr.Flow.run config profile sinks) in
  let checked mode =
    best (fun () ->
        match Gcr.Flow.run_checked ~mode config profile sinks with
        | Ok tree -> tree
        | Error _ -> assert false)
  in
  let dflt = checked Gcr.Flow.Default in
  let para = checked Gcr.Flow.Paranoid in
  let open Util.Text_table in
  let t =
    create
      ~title:(Printf.sprintf "Full pipeline, %d sinks (best of %d)" n reps)
      [ ("variant", Left); ("time (s)", Right); ("vs run", Right) ]
  in
  add_row t [ "Flow.run (unchecked)"; Printf.sprintf "%.3f" plain; "1.00x" ];
  add_row t
    [ "run_checked Default"; Printf.sprintf "%.3f" dflt;
      Printf.sprintf "%.2fx" (dflt /. plain) ];
  add_row t
    [ "run_checked Paranoid"; Printf.sprintf "%.3f" para;
      Printf.sprintf "%.2fx" (para /. plain) ];
  print t;
  pf "\nBudgets (ISSUE 4): default guards <= 1.05x, paranoid <= 2x.\n"

(* ------------------------------------------------------------------ *)
(* Trace overhead: Obs instrumentation disabled vs enabled            *)
(* ------------------------------------------------------------------ *)

let trace_overhead () =
  section "Observability overhead: Obs tracing off vs on";
  let n = if quick () then 250 else 2000 in
  let reps = if quick () then 2 else 3 in
  let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
  let { Benchmarks.Suite.sinks; profile; config; _ } =
    Benchmarks.Suite.case ~stream_length:1_000 spec
  in
  let was_on = Util.Obs.enabled () in
  let best enabled =
    Util.Obs.set_enabled enabled;
    let t = ref infinity in
    for _ = 1 to reps do
      let t0 = Util.Obs.Clock.now () in
      Sys.opaque_identity (Gcr.Flow.run config profile sinks) |> ignore;
      t := Float.min !t (Util.Obs.Clock.now () -. t0)
    done;
    !t
  in
  let off = best false in
  let on = best true in
  Util.Obs.set_enabled was_on;
  let open Util.Text_table in
  let t =
    create
      ~title:(Printf.sprintf "Flow.run, %d sinks (best of %d)" n reps)
      [ ("variant", Left); ("time (s)", Right); ("vs off", Right) ]
  in
  add_row t [ "trace off"; Printf.sprintf "%.3f" off; "1.00x" ];
  add_row t [ "trace on"; Printf.sprintf "%.3f" on; Printf.sprintf "%.2fx" (on /. off) ];
  print t;
  pf "\nBudget (ISSUE 5): trace-on <= 1.05x at 2000 sinks.\n"

(* ------------------------------------------------------------------ *)
(* Routing service under sustained load                                *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  section "Routing service: sustained loopback load (gcr serve)";
  let n_workloads = if quick () then 4 else 8 in
  let rounds = if quick () then 6 else 25 in
  let clients = 2 in
  let total = n_workloads * rounds in
  let texts =
    Array.init n_workloads (fun i ->
        Conformance.Scenario.render
          (Conformance.Scenario.generate
             (Util.Prng.create (9000 + i))
             ~tag:(Printf.sprintf "serve-bench #%d" i)))
  in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcr-bench-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    {
      (Serve.Server.default_config (Serve.Server.Unix_socket path)) with
      Serve.Server.workers = 2;
      queue_cap = 128;
    }
  in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let daemon_stats = ref None in
  let daemon =
    Thread.create
      (fun () ->
        daemon_stats :=
          Some
            (Serve.Server.run
               ~stop:(fun () -> Atomic.get stop)
               ~on_ready:(fun _ -> Atomic.set ready true)
               cfg))
      ()
  in
  while not (Atomic.get ready) do Thread.yield () done;
  let lat = Array.make total 0.0 in
  let answers = Array.make total None in
  let t0 = Util.Obs.Clock.now () in
  (* Closed-loop clients: each waits for its response before sending the
     next request, so the latencies are service latencies, not queueing
     artifacts of an open-loop burst. Workloads cycle, so every workload
     is cold exactly once and warm thereafter. *)
  let client k =
    let c = Serve.Client.connect (Serve.Server.Unix_socket path) in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        let i = ref k in
        while !i < total do
          let id = !i in
          let s0 = Util.Obs.Clock.now () in
          Serve.Client.send c
            {
              Serve.Proto.id;
              scenario = texts.(id mod n_workloads);
              budget_ms = None;
              paranoid = false;
              kind = Serve.Proto.Route;
            };
          (match Serve.Client.recv ~timeout_s:300.0 c with
          | Ok (Some (Serve.Proto.Answer a)) -> answers.(id) <- Some a
          | Ok (Some (Serve.Proto.Reject r)) ->
            failwith ("bench request rejected: " ^ r.Serve.Proto.message)
          | Ok None -> failwith "daemon closed mid-bench"
          | Error e -> failwith ("bench transport error: " ^ e));
          lat.(id) <- Util.Obs.Clock.now () -. s0;
          i := !i + clients
        done)
  in
  let threads = List.init clients (fun k -> Thread.create client k) in
  List.iter Thread.join threads;
  let wall = Util.Obs.Clock.now () -. t0 in
  Atomic.set stop true;
  Thread.join daemon;
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let pct p =
    sorted.(min (total - 1) (int_of_float (p *. float_of_int total))) *. 1e9
  in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  let rps = float_of_int total /. wall in
  let cold = ref 0 and warm_hits = ref 0 and warm_total = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (a : Serve.Proto.answer) ->
        if a.Serve.Proto.cache_warm then begin
          warm_hits := !warm_hits + a.Serve.Proto.audit_hits;
          warm_total :=
            !warm_total + a.Serve.Proto.audit_hits + a.Serve.Proto.audit_misses
        end
        else incr cold)
    answers;
  let warm_rate =
    if !warm_total = 0 then 0.0
    else float_of_int !warm_hits /. float_of_int !warm_total
  in
  let open Util.Text_table in
  let t =
    create
      ~title:
        (Printf.sprintf
           "%d requests, %d workloads x %d rounds, %d clients, 2 workers"
           total n_workloads rounds clients)
      [ ("metric", Left); ("value", Right) ]
  in
  add_row t [ "throughput (req/s)"; Printf.sprintf "%.1f" rps ];
  add_row t [ "latency p50 (ms)"; Printf.sprintf "%.2f" (p50 /. 1e6) ];
  add_row t [ "latency p99 (ms)"; Printf.sprintf "%.2f" (p99 /. 1e6) ];
  add_row t [ "cold workload sightings"; string_of_int !cold ];
  add_row t
    [ "warm audit pcache hit rate"; Printf.sprintf "%.1f%%" (100.0 *. warm_rate) ];
  print t;
  (match !daemon_stats with
  | Some s ->
    pf "\ndaemon accounting: %d connections, %d answered, drained %s\n"
      s.Serve.Server.connections s.Serve.Server.answered
      (if s.Serve.Server.drained_clean then "clean" else "DIRTY")
  | None -> ());
  record "serve"
    (Printf.sprintf
       "{\"requests\": %d, \"workloads\": %d, \"requests_per_s\": %.1f, \
        \"p50_ns\": %.1f, \"p99_ns\": %.1f, \"cold\": %d, \
        \"warm_audit_hit_rate\": %.4f}"
       total n_workloads rps p50 p99 !cold warm_rate)

(* ------------------------------------------------------------------ *)
(* ECO repair: streaming chunk update + local repair vs full re-route  *)
(* ------------------------------------------------------------------ *)

let eco_bench () =
  section "ECO repair: chunk update + local repair vs full re-route";
  let n = if quick () then 2_000 else 10_000 in
  let reps = if quick () then 2 else 3 in
  let spec = Benchmarks.Rbench.scaled (Benchmarks.Rbench.by_name "r1") ~n_sinks:n in
  let { Benchmarks.Suite.sinks; profile; config; _ } =
    Benchmarks.Suite.case ~stream_length:2_000 spec
  in
  let base_stream = Activity.Profile.stream profile in
  let len = Activity.Instr_stream.length base_stream in
  let trace =
    Array.init len (Activity.Instr_stream.get base_stream)
  in
  (* A localized drift: a burst of the trace's first instruction, long
     enough to push the modules it touches past the threshold but small
     against the whole trace, so most of the tree's statistics barely
     move. (The conformance oracle separately fuzzes the widespread-drift
     fallback; this section times the case locality is built for.) *)
  let chunks = [ Array.make (Int.max 8 (len / 20)) trace.(0) ] in
  let best f =
    let t = ref infinity in
    let r = ref None in
    for _ = 1 to reps do
      let t0 = Util.Obs.Clock.now () in
      r := Some (Sys.opaque_identity (f ()));
      t := Float.min !t (Util.Obs.Clock.now () -. t0)
    done;
    (Option.get !r, !t)
  in
  let tree, base_s = best (fun () -> Gcr.Flow.run config profile sinks) in
  let drifted, update_s =
    best (fun () ->
        let acc = Activity.Stream_update.of_stream base_stream in
        List.iter (Activity.Stream_update.ingest acc) chunks;
        Activity.Stream_update.profile acc)
  in
  let report, repair_s =
    best (fun () -> Gcr.Eco.repair ~options:Gcr.Flow.default tree drifted)
  in
  let scratch, full_s = best (fun () -> Gcr.Flow.run config drifted sinks) in
  let w_ratio =
    Gcr.Cost.w_total report.Gcr.Eco.tree /. Gcr.Cost.w_total scratch
  in
  let open Util.Text_table in
  let t =
    create
      ~title:
        (Printf.sprintf "r1 scaled to %d sinks, drifted trace (best of %d)" n
           reps)
      [ ("step", Left); ("time (s)", Right); ("vs full re-route", Right) ]
  in
  add_row t [ "base route"; Printf.sprintf "%.3f" base_s; "" ];
  add_row t
    [ "chunk update (streaming tables)"; Printf.sprintf "%.4f" update_s;
      Printf.sprintf "%.3fx" (update_s /. full_s) ];
  add_row t
    [ "local repair"; Printf.sprintf "%.3f" repair_s;
      Printf.sprintf "%.2fx" (repair_s /. full_s) ];
  add_row t
    [ "update + repair"; Printf.sprintf "%.3f" (update_s +. repair_s);
      Printf.sprintf "%.2fx" ((update_s +. repair_s) /. full_s) ];
  add_row t [ "full re-route"; Printf.sprintf "%.3f" full_s; "1.00x" ];
  print t;
  pf
    "\n%d of %d nodes drifted, %d stale subtrees, %d sinks re-merged%s;\n\
     repaired/scratch W ratio %.4f.\n"
    (List.length report.Gcr.Eco.drifted)
    (Clocktree.Topo.n_nodes tree.Gcr.Gated_tree.topo)
    (List.length report.Gcr.Eco.stale)
    report.Gcr.Eco.resinks
    (if report.Gcr.Eco.full_rebuild then " (fell back to full rebuild)" else "")
    w_ratio;
  record "eco"
    (Printf.sprintf
       "{\"n_sinks\": %d, \"update_ns\": %.1f, \"repair_ns\": %.1f, \
        \"full_reroute_ns\": %.1f, \"w_ratio\": %.6f, \"drifted\": %d, \
        \"resinks\": %d, \"full_rebuild\": %b}"
       n (update_s *. 1e9) (repair_s *. 1e9) (full_s *. 1e9) w_ratio
       (List.length report.Gcr.Eco.drifted)
       report.Gcr.Eco.resinks report.Gcr.Eco.full_rebuild)

(* When this process itself ran traced (GCR_TRACE=1), dump its own run
   report so CI can archive it next to BENCH_greedy.json. *)
let dump_obs_report () =
  if Util.Obs.enabled () then begin
    let out =
      match Sys.getenv_opt "GCR_OBS_OUT" with
      | Some p -> p
      | None -> "BENCH_obs_report.json"
    in
    let oc = open_out out in
    output_string oc (Util.Obs.to_json (Util.Obs.snapshot ()));
    close_out oc;
    pf "Wrote %s (Obs run report).\n" out
  end

(* ------------------------------------------------------------------ *)
(* Section registry and entry point                                    *)
(* ------------------------------------------------------------------ *)

let sections : (string * (unit -> unit)) list =
  [
    ("table4", table4);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("ablate-cost", ablate_cost);
    ("ablate-ctrl-terms", ablate_ctrl_terms);
    ("ablate-forced-insertion", ablate_forced_insertion);
    ("ablate-sizing", ablate_sizing);
    ("ablate-skew-budget", ablate_skew_budget);
    ("ablate-refinement", ablate_refinement);
    ("stream-sensitivity", stream_sensitivity);
    ("variation", variation_study);
    ("validation", validation);
    ("scaling", scaling);
    ("greedy-scaling", greedy_scaling);
    ("shard-scaling", shard_scaling);
    ("gate-share", gate_share_bench);
    ("kernel-micro", kernel_micro);
    ("guard-overhead", guard_overhead);
    ("trace-overhead", trace_overhead);
    ("serve", serve_bench);
    ("eco", eco_bench);
    ("bechamel", run_bechamel);
  ]

let section_names = List.map fst sections

let run ?(quick = false) ?only ?(out = "BENCH_greedy.json") () =
  quick_mode := quick;
  Hashtbl.reset case_cache;
  results := [];
  (* Resolve every requested name before running anything, so a typo in
     the last --only entry doesn't waste a full harness run. *)
  let to_run =
    match only with
    | None -> sections
    | Some names ->
      List.map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> (name, f)
          | None ->
            invalid_arg
              (Printf.sprintf "unknown bench section %S (known: %s)" name
                 (String.concat ", " section_names)))
        names
  in
  pf "Gated Clock Routing Minimizing the Switched Capacitance (DATE'98)\n";
  pf "Reproduction harness%s\n" (if quick then " [quick mode]" else "");
  List.iter (fun (_, f) -> f ()) to_run;
  write_results out;
  dump_obs_report ();
  if only = None then
    pf "\nDone. See EXPERIMENTS.md for the paper-vs-measured record.\n"
