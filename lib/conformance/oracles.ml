let fail oracle fmt =
  Printf.ksprintf
    (fun detail ->
      Util.Gcr_error.raise_t
        (Util.Gcr_error.Engine_mismatch { stage = "Oracles." ^ oracle; detail }))
    fmt

let set_str s = Format.asprintf "%a" Activity.Module_set.pp s

let fail_tree what fmt =
  Printf.ksprintf
    (fun detail ->
      Util.Gcr_error.raise_t
        (Util.Gcr_error.Engine_mismatch
           { stage = Printf.sprintf "Oracles.same_tree (%s)" what; detail }))
    fmt

let same_tree ~what (a : Gcr.Gated_tree.t) (b : Gcr.Gated_tree.t) =
  let fail fmt = fail_tree what fmt in
  if not (Clocktree.Topo.equal a.Gcr.Gated_tree.topo b.Gcr.Gated_tree.topo) then
    fail "topologies differ";
  if a.Gcr.Gated_tree.skew_budget <> b.Gcr.Gated_tree.skew_budget then
    fail "skew budgets differ (%.17g vs %.17g)" a.Gcr.Gated_tree.skew_budget
      b.Gcr.Gated_tree.skew_budget;
  (match (a.Gcr.Gated_tree.sharing, b.Gcr.Gated_tree.sharing) with
  | None, None -> ()
  | Some (mi, eps), Some (mi', eps') when mi = mi' && eps = eps' -> ()
  | _ -> fail "sharing parameters differ");
  if a.Gcr.Gated_tree.test_en <> b.Gcr.Gated_tree.test_en then
    fail "test_en differs (%b vs %b)" a.Gcr.Gated_tree.test_en
      b.Gcr.Gated_tree.test_en;
  let n = Clocktree.Topo.n_nodes a.Gcr.Gated_tree.topo in
  for v = 0 to n - 1 do
    if a.Gcr.Gated_tree.kind.(v) <> b.Gcr.Gated_tree.kind.(v) then
      fail "node %d: hardware kinds differ" v;
    if a.Gcr.Gated_tree.governing.(v) <> b.Gcr.Gated_tree.governing.(v) then
      fail "node %d: governing gates differ (%d vs %d)" v
        a.Gcr.Gated_tree.governing.(v) b.Gcr.Gated_tree.governing.(v);
    if a.Gcr.Gated_tree.scale.(v) <> b.Gcr.Gated_tree.scale.(v) then
      fail "node %d: size factors differ (%.17g vs %.17g)" v
        a.Gcr.Gated_tree.scale.(v) b.Gcr.Gated_tree.scale.(v);
    let ea = a.Gcr.Gated_tree.enables.(v) and eb = b.Gcr.Gated_tree.enables.(v) in
    if not (Activity.Module_set.equal ea.Gcr.Enable.mods eb.Gcr.Enable.mods) then
      fail "node %d: enable sets differ (%s vs %s)" v (set_str ea.Gcr.Enable.mods)
        (set_str eb.Gcr.Enable.mods);
    if ea.Gcr.Enable.p <> eb.Gcr.Enable.p || ea.Gcr.Enable.ptr <> eb.Gcr.Enable.ptr
    then
      fail "node %d: enable statistics differ (P %.17g vs %.17g, Ptr %.17g vs %.17g)"
        v ea.Gcr.Enable.p eb.Gcr.Enable.p ea.Gcr.Enable.ptr eb.Gcr.Enable.ptr;
    let la = Clocktree.Embed.loc a.Gcr.Gated_tree.embed v
    and lb = Clocktree.Embed.loc b.Gcr.Gated_tree.embed v in
    if la.Geometry.Point.x <> lb.Geometry.Point.x
       || la.Geometry.Point.y <> lb.Geometry.Point.y
    then
      fail "node %d: embedded locations differ ((%.17g, %.17g) vs (%.17g, %.17g))"
        v la.Geometry.Point.x la.Geometry.Point.y lb.Geometry.Point.x
        lb.Geometry.Point.y;
    let wa = Clocktree.Embed.edge_len a.Gcr.Gated_tree.embed v
    and wb = Clocktree.Embed.edge_len b.Gcr.Gated_tree.embed v in
    if wa <> wb then
      fail "node %d: edge lengths differ (%.17g vs %.17g)" v wa wb;
    if a.Gcr.Gated_tree.share_rep.(v) <> b.Gcr.Gated_tree.share_rep.(v) then
      fail "node %d: share representatives differ (%d vs %d)" v
        a.Gcr.Gated_tree.share_rep.(v) b.Gcr.Gated_tree.share_rep.(v);
    let sa = a.Gcr.Gated_tree.shared_enables.(v)
    and sb = b.Gcr.Gated_tree.shared_enables.(v) in
    if not (Activity.Module_set.equal sa.Gcr.Enable.mods sb.Gcr.Enable.mods)
    then
      fail "node %d: shared enable sets differ (%s vs %s)" v
        (set_str sa.Gcr.Enable.mods) (set_str sb.Gcr.Enable.mods);
    if sa.Gcr.Enable.p <> sb.Gcr.Enable.p || sa.Gcr.Enable.ptr <> sb.Gcr.Enable.ptr
    then
      fail
        "node %d: shared enable statistics differ (P %.17g vs %.17g, Ptr \
         %.17g vs %.17g)"
        v sa.Gcr.Enable.p sb.Gcr.Enable.p sa.Gcr.Enable.ptr sb.Gcr.Enable.ptr;
    if a.Gcr.Gated_tree.bypass.(v) <> b.Gcr.Gated_tree.bypass.(v) then
      fail "node %d: bypass flags differ" v
  done

let analytic_vs_simulated tree = Gsim.Check.validate ~structural:false tree

(* Test mode is the scan/ATPG contract: with [test_en] forced on and
   every bypass honored, the tree must clock like the ungated tree —
   whose waveform is trivially all-true on every edge, every cycle. The
   comparison is bit-for-bit against the simulator's replay, so a single
   gate left opaque (or a stuck bypass bit) on any cycle fails. *)
let test_mode_bypass (tree : Gcr.Gated_tree.t) stream =
  let forced = Gcr.Gated_tree.with_test_en tree true in
  let wave = Gsim.Gate_sim.clock_waveforms forced stream in
  Array.iteri
    (fun v row ->
      Array.iteri
        (fun t on ->
          if not on then
            fail "test_mode_bypass"
              "node %d: clock gated off at cycle %d despite test_en" v t)
        row)
    wave

let signature_vs_tables (tree : Gcr.Gated_tree.t) =
  let profile = tree.Gcr.Gated_tree.profile in
  match Activity.Profile.signature_kernel profile with
  | None -> ()
  | Some kernel ->
    let ift = Activity.Profile.ift profile in
    let imatt = Activity.Profile.imatt profile in
    let topo = tree.Gcr.Gated_tree.topo in
    let mods v = tree.Gcr.Gated_tree.enables.(v).Gcr.Enable.mods in
    for v = 0 to Clocktree.Topo.n_nodes topo - 1 do
      let s = Activity.Signature.of_set kernel (mods v) in
      let p_sig = Activity.Signature.p kernel s
      and p_tab = Activity.Ift.p_any ift (mods v) in
      if p_sig <> p_tab then
        fail "signature_vs_tables"
          "node %d: kernel P %.17g <> IFT scan %.17g over %s" v p_sig p_tab
          (set_str (mods v));
      let ptr_sig = Activity.Signature.ptr kernel s
      and ptr_tab = Activity.Imatt.ptr imatt (mods v) in
      if ptr_sig <> ptr_tab then
        fail "signature_vs_tables"
          "node %d: kernel Ptr %.17g <> IMATT scan %.17g over %s" v ptr_sig
          ptr_tab (set_str (mods v));
      match Clocktree.Topo.children topo v with
      | None -> ()
      | Some (l, r) ->
        (* The greedy candidate fast path: union answered from the child
           signatures without materializing the merged module set. *)
        let sl = Activity.Signature.of_set kernel (mods l)
        and sr = Activity.Signature.of_set kernel (mods r) in
        let u = Activity.Module_set.union (mods l) (mods r) in
        let pu_sig = Activity.Signature.p_union kernel sl sr
        and pu_tab = Activity.Ift.p_any ift u in
        if pu_sig <> pu_tab then
          fail "signature_vs_tables"
            "node %d: p_union %.17g <> IFT scan %.17g over %s" v pu_sig pu_tab
            (set_str u);
        let tu_sig = Activity.Signature.ptr_union kernel sl sr
        and tu_tab = Activity.Imatt.ptr imatt u in
        if tu_sig <> tu_tab then
          fail "signature_vs_tables"
            "node %d: ptr_union %.17g <> IMATT scan %.17g over %s" v tu_sig
            tu_tab (set_str u)
    done

(* Replay one engine's merge sequence (ascending internal-node ids are
   the commit order) and require every chosen pair to achieve the exact
   brute-force minimum of the activity-merge cost over the roots active
   at that step. The replayed Grow state and signature unions evolve
   through the same operations as the engine's, so the recomputed costs
   are bit-identical and the comparison needs no tolerance — and unlike a
   topology diff, any min-achieving choice passes, so the ubiquitous
   exact cost ties (saturated P(EN) with overlapping regions at distance
   zero) cannot produce false alarms. *)
let greedy_optimal ~what (config : Gcr.Config.t) profile sinks topo =
  match Activity.Profile.signature_kernel profile with
  | None -> ()
  | Some kern ->
    let tech = config.Gcr.Config.tech in
    let n = Array.length sinks in
    let grow =
      Clocktree.Grow.create tech
        ~edge_gate:(Some tech.Clocktree.Tech.and_gate)
        sinks
    in
    let n_mods = Activity.Profile.n_modules profile in
    let size = (2 * n) - 1 in
    let sigs =
      Array.init n (fun v ->
          Activity.Signature.of_set kern
            (Activity.Module_set.singleton n_mods
               sinks.(v).Clocktree.Sink.module_id))
    in
    let sigs = Array.append sigs (Array.make (n - 1) sigs.(0)) in
    let tie = 1e-6 /. (1.0 +. Geometry.Bbox.width config.Gcr.Config.die) in
    let cost a b =
      Activity.Signature.p_union kern sigs.(a) sigs.(b)
      +. (tie *. Clocktree.Grow.dist grow a b)
    in
    let active = Array.make size false in
    for v = 0 to n - 1 do
      active.(v) <- true
    done;
    for v = n to size - 1 do
      let a, b =
        match Clocktree.Topo.children topo v with
        | Some pair -> pair
        | None ->
          Util.Gcr_error.internal ~stage:"engine_vs_dense"
            "%s: internal node %d has no children in the replayed topology"
            what v
      in
      if not (active.(a) && active.(b)) then
        fail "engine_vs_dense" "%s: merge %d joins non-roots (%d, %d)" what
          (v - n) a b;
      let chosen = cost a b in
      let best = ref infinity in
      for i = 0 to v - 1 do
        if active.(i) then
          for j = i + 1 to v - 1 do
            if active.(j) then best := Float.min !best (cost i j)
          done
      done;
      if chosen > !best then
        fail "engine_vs_dense"
          "%s: merge %d chose (%d, %d) at cost %.17g but the cheapest \
           available pair costs %.17g"
          what (v - n) a b chosen !best;
      let k = Clocktree.Grow.merge grow a b in
      if k <> v then
        fail "engine_vs_dense" "%s: replay numbered merge %d as %d" what v k;
      sigs.(k) <- Activity.Signature.union sigs.(a) sigs.(b);
      active.(a) <- false;
      active.(b) <- false;
      active.(k) <- true
    done

(* Each region of a sharded plan is routed by the same greedy engine over
   its own sinks, so each region's merge list must be greedy-optimal over
   that region in isolation — replayed through a fresh {!Gcr.Router.forest}
   whose Eq. (3) cost evolves through exactly the operations the region
   router performed. The replay scans pairs as (i, j) with i < j while
   the engine's partner scan may have evaluated the same pair the other
   way round, and [Cost.merge_sc] is orientation-sensitive in the last
   ulp — so on exact cost ties (degenerate profiles, coincident sinks)
   the brute-force minimum can undercut the chosen pair's recomputed
   cost by ~1 ulp. A relative tolerance of 1e-12 absorbs that noise;
   genuinely non-greedy choices miss by whole cost units. (The stitch
   above the regions is not globally greedy-optimal by design; its
   tolerance is measured in EXPERIMENTS.md, not asserted here.) *)
let sharded_regions_optimal ?shards (config : Gcr.Config.t) profile sinks =
  let plan = Gcr.Shard_router.plan ?shards ~domains:1 config profile sinks in
  Array.iteri
    (fun r ls ->
      let k = Array.length ls in
      if k > 1 then begin
        let forest = Gcr.Router.forest config profile ls in
        let active = Array.make ((2 * k) - 1) false in
        for v = 0 to k - 1 do
          active.(v) <- true
        done;
        Array.iteri
          (fun step (a, b) ->
            if not (active.(a) && active.(b)) then
              fail "sharded_regions_optimal"
                "region %d: merge %d joins non-roots (%d, %d)" r step a b;
            let chosen = Gcr.Router.cost forest a b in
            let m = k + step in
            let best = ref infinity in
            for i = 0 to m - 1 do
              if active.(i) then
                for j = i + 1 to m - 1 do
                  if active.(j) then
                    best := Float.min !best (Gcr.Router.cost forest i j)
                done
            done;
            if not (Util.Tol.within ~rel:1e-12 ~value:chosen ~bound:!best ())
            then
              fail "sharded_regions_optimal"
                "region %d: merge %d chose (%d, %d) at cost %.17g but the \
                 cheapest available pair costs %.17g"
                r step a b chosen !best;
            let v = Gcr.Router.merge forest a b in
            if v <> m then
              fail "sharded_regions_optimal"
                "region %d: replay numbered merge %d as %d" r m v;
            active.(a) <- false;
            active.(b) <- false;
            active.(v) <- true)
          plan.Gcr.Shard_router.region_merges.(r)
      end)
    plan.Gcr.Shard_router.region_sinks

let engine_vs_dense (sc : Scenario.t) =
  let config = Scenario.config sc in
  let profile = Scenario.profile sc in
  let sinks = sc.Scenario.sinks in
  greedy_optimal ~what:"NN-heap engine" config profile sinks
    (Gcr.Activity_router.topology config profile sinks);
  greedy_optimal ~what:"dense oracle" config profile sinks
    (Gcr.Activity_router.topology_dense config profile sinks)

(* Streaming ingestion is additive over concatenation, so any chunking
   of the trace — including degenerate chunks — must land on the same
   tables bit-for-bit and therefore the same routed tree. The split here
   deliberately exercises every boundary shape at once: an empty chunk,
   a single-instruction chunk (whose only contribution is one hit count
   and the boundary pair), and a cut point inside a NOW/NEXT pair. *)
let chunked_vs_whole (sc : Scenario.t) =
  let stream = Scenario.instr_stream sc in
  let len = Activity.Instr_stream.length stream in
  let acc = Activity.Stream_update.create sc.Scenario.rtl in
  let cut = 1 + ((len - 1) / 2) in
  let slice pos n = Array.init n (fun i -> Activity.Instr_stream.get stream (pos + i)) in
  Activity.Stream_update.ingest acc (slice 0 1);
  Activity.Stream_update.ingest acc [||];
  Activity.Stream_update.ingest acc (slice 1 (cut - 1));
  Activity.Stream_update.ingest acc (slice cut (len - cut));
  let ift_c = Activity.Stream_update.ift acc
  and ift_w = Activity.Ift.build stream in
  if Activity.Ift.total_cycles ift_c <> Activity.Ift.total_cycles ift_w then
    fail "chunked_vs_whole" "IFT totals differ (%d chunked vs %d whole)"
      (Activity.Ift.total_cycles ift_c)
      (Activity.Ift.total_cycles ift_w);
  for i = 0 to Activity.Rtl.n_instructions sc.Scenario.rtl - 1 do
    if Activity.Ift.count ift_c i <> Activity.Ift.count ift_w i then
      fail "chunked_vs_whole" "IFT count of instruction %d differs (%d vs %d)"
        i
        (Activity.Ift.count ift_c i)
        (Activity.Ift.count ift_w i)
  done;
  let imatt_c = Activity.Stream_update.imatt acc
  and imatt_w = Activity.Imatt.build stream in
  if
    Activity.Imatt.total_pairs imatt_c <> Activity.Imatt.total_pairs imatt_w
  then
    fail "chunked_vs_whole" "IMATT totals differ (%d chunked vs %d whole)"
      (Activity.Imatt.total_pairs imatt_c)
      (Activity.Imatt.total_pairs imatt_w);
  let rows_c = Activity.Imatt.rows imatt_c
  and rows_w = Activity.Imatt.rows imatt_w in
  if Array.length rows_c <> Array.length rows_w then
    fail "chunked_vs_whole" "IMATT row counts differ (%d vs %d)"
      (Array.length rows_c) (Array.length rows_w);
  Array.iteri
    (fun r (a : Activity.Imatt.row) ->
      let b = rows_w.(r) in
      if
        a.Activity.Imatt.first <> b.Activity.Imatt.first
        || a.Activity.Imatt.second <> b.Activity.Imatt.second
        || a.Activity.Imatt.count <> b.Activity.Imatt.count
      then
        fail "chunked_vs_whole"
          "IMATT row %d differs ((%d,%d)x%d vs (%d,%d)x%d)" r
          a.Activity.Imatt.first a.Activity.Imatt.second a.Activity.Imatt.count
          b.Activity.Imatt.first b.Activity.Imatt.second b.Activity.Imatt.count)
    rows_c;
  (* Same tables => same routed tree, bit for bit. *)
  let config = Scenario.config sc in
  let route profile =
    Gcr.Flow.run ~options:sc.Scenario.options config profile sc.Scenario.sinks
  in
  same_tree ~what:"chunked ingestion vs whole-trace build"
    (route (Activity.Stream_update.profile acc))
    (route (Scenario.profile sc))

(* Deterministic drift on top of a scenario's trace: one chunk replaying
   the trace reversed (moves the pair distribution, i.e. Ptr, while
   keeping every hit count) and one chunk hammering the trace's first
   instruction (moves the hit distribution, i.e. P, in both
   directions). *)
let drift_chunks (sc : Scenario.t) =
  let stream = sc.Scenario.stream in
  let len = Array.length stream in
  [ Array.init len (fun i -> stream.(len - 1 - i));
    Array.make (Int.max 8 len) stream.(0) ]

(* The locality bound for ECO repair: the switched capacitance of a
   locally repaired tree may not stray from a from-scratch route under
   the updated profile by more than this relative tolerance. Measured
   over fuzz smoke populations (EXPERIMENTS.md, "Streaming updates and
   ECO repair"); genuine repair
   bugs (stale enables, a mis-spliced subtree) miss by whole factors. *)
let eco_w_tolerance = 0.25

let eco_repair_matches_scratch ?threshold (sc : Scenario.t) =
  let config = Scenario.config sc in
  let options = sc.Scenario.options in
  let with_test t = if sc.Scenario.test_en then Gcr.Gated_tree.with_test_en t true else t in
  let acc = Activity.Stream_update.of_stream (Scenario.instr_stream sc) in
  let base = with_test (Gcr.Flow.run ~options config (Activity.Stream_update.profile acc) sc.Scenario.sinks) in
  List.iter (Activity.Stream_update.ingest acc) (drift_chunks sc);
  let updated = Activity.Stream_update.profile acc in
  let report = Gcr.Eco.repair ?threshold ~options base updated in
  let repaired = report.Gcr.Eco.tree in
  Gsim.Invariant.structural repaired;
  analytic_vs_simulated repaired;
  let scratch = with_test (Gcr.Flow.run ~options config updated sc.Scenario.sinks) in
  if report.Gcr.Eco.full_rebuild then
    (* Root drift degenerates to the ordinary pipeline — then the repair
       must be the from-scratch route, bit for bit. *)
    same_tree ~what:"eco full rebuild vs scratch" repaired scratch
  else begin
    let w_rep = Gcr.Cost.w_total repaired
    and w_scr = Gcr.Cost.w_total scratch in
    if not (Float.is_finite w_rep && w_rep >= 0.0) then
      fail "eco_repair_matches_scratch" "repaired W is %.17g" w_rep;
    if not (Util.Tol.close ~rel:eco_w_tolerance w_rep w_scr) then
      fail "eco_repair_matches_scratch"
        "repaired W %.17g strays more than %g%% from the from-scratch W \
         %.17g (%d drifted nodes, %d stale subtrees, %d sinks re-merged)"
        w_rep (100.0 *. eco_w_tolerance) w_scr
        (List.length report.Gcr.Eco.drifted)
        (List.length report.Gcr.Eco.stale)
        report.Gcr.Eco.resinks
  end

let with_domains value f =
  let old = Sys.getenv_opt "GCR_DOMAINS" in
  Unix.putenv "GCR_DOMAINS" value;
  Fun.protect
    (* An empty value counts as unset (see Util.Parallel.default_domains),
       so a previously-absent variable is restored faithfully. *)
    ~finally:(fun () -> Unix.putenv "GCR_DOMAINS" (Option.value old ~default:""))
    f

let domains_determinism (sc : Scenario.t) =
  let run () =
    let profile = Scenario.profile sc in
    Gcr.Flow.run ~options:sc.Scenario.options (Scenario.config sc) profile
      sc.Scenario.sinks
  in
  let sequential = with_domains "1" run in
  let parallel = with_domains "4" run in
  same_tree ~what:"GCR_DOMAINS=1 vs GCR_DOMAINS=4" sequential parallel
