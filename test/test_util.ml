(* Tests for the Util support library: PRNG determinism, the binary heap
   used by the greedy merge engines, statistics and table rendering. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Prng.bits64 a) (Util.Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Util.Prng.bits64 a <> Util.Prng.bits64 b)

let test_prng_copy () =
  let a = Util.Prng.create 7 in
  let _ = Util.Prng.bits64 a in
  let b = Util.Prng.copy a in
  Alcotest.(check int64) "copy continues stream" (Util.Prng.bits64 a)
    (Util.Prng.bits64 b)

let test_prng_split_independent () =
  let a = Util.Prng.create 9 in
  let b = Util.Prng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (Util.Prng.bits64 a <> Util.Prng.bits64 b)

let test_prng_int_range () =
  let g = Util.Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Util.Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_invalid () =
  let g = Util.Prng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Util.Prng.int g 0))

let test_prng_float_range () =
  let g = Util.Prng.create 4 in
  for _ = 1 to 1000 do
    let x = Util.Prng.float g 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_prng_float_mean () =
  let g = Util.Prng.create 5 in
  let xs = Array.init 20_000 (fun _ -> Util.Prng.float g 1.0) in
  let m = Util.Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.01)

let test_prng_choose_weighted () =
  let g = Util.Prng.create 6 in
  let w = [| 1.0; 0.0; 3.0 |] in
  let counts = [| 0; 0; 0 |] in
  for _ = 1 to 10_000 do
    let i = Util.Prng.choose_weighted g w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight index never drawn" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  Alcotest.(check bool) "3:1 ratio approximately" true (ratio > 2.6 && ratio < 3.4)

let test_prng_choose_weighted_invalid () =
  let g = Util.Prng.create 6 in
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Prng.choose_weighted: non-positive total") (fun () ->
      ignore (Util.Prng.choose_weighted g [| 0.0; 0.0 |]))

let test_prng_shuffle_permutation () =
  let g = Util.Prng.create 8 in
  let a = Array.init 50 Fun.id in
  Util.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Bin_heap                                                           *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h = Util.Bin_heap.create () in
  Alcotest.(check bool) "empty" true (Util.Bin_heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Util.Bin_heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Util.Bin_heap.peek h = None)

let test_heap_single () =
  let h = Util.Bin_heap.create () in
  Util.Bin_heap.push h 3.14 42;
  Alcotest.(check int) "length" 1 (Util.Bin_heap.length h);
  (match Util.Bin_heap.peek h with
  | Some (k, p) ->
    check_float "peek key" 3.14 k;
    Alcotest.(check int) "peek payload" 42 p
  | None -> Alcotest.fail "expected peek");
  (match Util.Bin_heap.pop h with
  | Some (k, p) ->
    check_float "pop key" 3.14 k;
    Alcotest.(check int) "pop payload" 42 p
  | None -> Alcotest.fail "expected pop");
  Alcotest.(check bool) "empty after pop" true (Util.Bin_heap.is_empty h)

let test_heap_ordering () =
  let h = Util.Bin_heap.create ~capacity:2 () in
  List.iter (fun (k, p) -> Util.Bin_heap.push h k p)
    [ (5.0, 5); (1.0, 1); (4.0, 4); (2.0, 2); (3.0, 3) ];
  let order = List.init 5 (fun _ ->
      match Util.Bin_heap.pop h with Some (_, p) -> p | None -> -1)
  in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] order

let test_heap_clear () =
  let h = Util.Bin_heap.create () in
  Util.Bin_heap.push h 1.0 1;
  Util.Bin_heap.push h 2.0 2;
  Util.Bin_heap.clear h;
  Alcotest.(check bool) "cleared" true (Util.Bin_heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_nat))
    (fun entries ->
      let h = Util.Bin_heap.create () in
      List.iter (fun (k, p) -> Util.Bin_heap.push h k p) entries;
      let rec drain acc =
        match Util.Bin_heap.pop h with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let keys = drain [] in
      List.length keys = List.length entries
      && keys = List.sort compare keys)

let prop_heap_multiset =
  QCheck.Test.make ~name:"heap preserves the pushed multiset" ~count:200
    QCheck.(list (pair (float_bound_exclusive 100.0) small_nat))
    (fun entries ->
      let h = Util.Bin_heap.create () in
      List.iter (fun (k, p) -> Util.Bin_heap.push h k p) entries;
      let rec drain acc =
        match Util.Bin_heap.pop h with
        | Some kp -> drain (kp :: acc)
        | None -> acc
      in
      let out = drain [] in
      List.sort compare out = List.sort compare entries)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_float "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "empty mean" 0.0 (Util.Stats.mean [||])

let test_stats_variance () =
  check_float "variance" 1.25 (Util.Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "constant" 0.0 (Util.Stats.variance [| 5.0; 5.0; 5.0 |])

let test_stats_median () =
  check_float "odd" 2.0 (Util.Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "even" 2.5 (Util.Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_min_max () =
  let lo, hi = Util.Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_stats_percentile () =
  let a = [| 0.0; 10.0 |] in
  check_float "p0" 0.0 (Util.Stats.percentile a 0.0);
  check_float "p50" 5.0 (Util.Stats.percentile a 50.0);
  check_float "p100" 10.0 (Util.Stats.percentile a 100.0)

let test_stats_geometric_mean () =
  check_float "gmean" 2.0 (Util.Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

(* ------------------------------------------------------------------ *)
(* Text_table                                                         *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Util.Text_table.create ~title:"T" [ ("name", Util.Text_table.Left); ("v", Util.Text_table.Right) ] in
  Util.Text_table.add_row t [ "alpha"; "1" ];
  Util.Text_table.add_float_row t ~decimals:1 "beta" [ 2.25 ];
  let s = Util.Text_table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "mentions alpha" true
    (Astring.String.is_infix ~affix:"alpha" s);
  Alcotest.(check bool) "rounds beta" true
    (Astring.String.is_infix ~affix:"2.2" s || Astring.String.is_infix ~affix:"2.3" s)

let test_table_arity () =
  let t = Util.Text_table.create [ ("a", Util.Text_table.Left) ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Text_table.add_row: arity mismatch") (fun () ->
      Util.Text_table.add_row t [ "x"; "y" ])

(* ------------------------------------------------------------------ *)
(* Parallel                                                           *)
(* ------------------------------------------------------------------ *)

(* The contract under test: results are a pure function of (n, f), never
   of the domain count — slot i always holds f i. *)
let test_parallel_init_matches_sequential () =
  let f i = (i * 31) land 1023 in
  let expect = Array.init 1000 f in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "init, %d domains" d)
        expect
        (Util.Parallel.init ~domains:d 1000 f))
    [ 1; 2; 4 ]

let test_parallel_for_disjoint_slots () =
  List.iter
    (fun d ->
      let out = Array.make 777 (-1) in
      Util.Parallel.parallel_for ~domains:d ~n:777 (fun i -> out.(i) <- i * i);
      Alcotest.(check (array int))
        (Printf.sprintf "parallel_for, %d domains" d)
        (Array.init 777 (fun i -> i * i))
        out)
    [ 1; 2; 4 ]

let test_parallel_map () =
  let src = Array.init 300 (fun i -> float_of_int i /. 7.0) in
  let expect = Array.map sqrt src in
  List.iter
    (fun d ->
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "map, %d domains" d)
        expect
        (Util.Parallel.map ~domains:d sqrt src))
    [ 1; 2; 4 ]

let test_parallel_small_and_empty () =
  Alcotest.(check (array int)) "empty" [||] (Util.Parallel.init ~domains:4 0 (fun i -> i));
  Alcotest.(check (array int))
    "below spawn threshold" (Array.init 5 succ)
    (Util.Parallel.init ~domains:4 5 succ)

let test_parallel_propagates_exceptions () =
  Alcotest.check_raises "worker failure reraised" (Failure "boom") (fun () ->
      Util.Parallel.parallel_for ~domains:2 ~n:100 (fun i ->
          if i = 63 then failwith "boom"))

(* map_dyn schedules largest-first from a shared cursor; the contract is
   that scheduling never leaks into the result: out.(i) = f arr.(i)
   whatever the domain count or the (possibly lying) weight function. *)
let test_map_dyn_matches_map () =
  let src = Array.init 203 (fun i -> (i * 37) mod 101) in
  let f x = (x * x) + 7 in
  let expect = Array.map f src in
  List.iter
    (fun d ->
      (* honest weight, constant weight, adversarially inverted weight *)
      List.iter
        (fun (label, weight) ->
          Alcotest.(check (array int))
            (Printf.sprintf "map_dyn %s, %d domains" label d)
            expect
            (Util.Parallel.map_dyn ~domains:d ~weight f src))
        [
          ("weight=x", fun x -> x);
          ("weight=const", fun _ -> 1);
          ("weight=-x", fun x -> -x);
        ])
    [ 1; 2; 4 ]

let test_map_dyn_empty_and_single () =
  Alcotest.(check (array int))
    "empty" [||]
    (Util.Parallel.map_dyn ~domains:4 ~weight:(fun x -> x) succ [||]);
  Alcotest.(check (array int))
    "single" [| 42 |]
    (Util.Parallel.map_dyn ~domains:4 ~weight:(fun x -> x) succ [| 41 |])

let test_map_dyn_propagates_exceptions () =
  let src = Array.init 64 Fun.id in
  Alcotest.check_raises "worker failure reraised" (Failure "dyn-boom")
    (fun () ->
      ignore
        (Util.Parallel.map_dyn ~domains:2 ~weight:Fun.id
           (fun i -> if i = 17 then failwith "dyn-boom" else i)
           src))

let prop_map_dyn_equals_map =
  QCheck.Test.make ~name:"map_dyn = map for any weights and domain count"
    ~count:100
    QCheck.(pair (list small_int) (int_range 1 4))
    (fun (xs, domains) ->
      let src = Array.of_list xs in
      let f x = (x * 2654435761) land 0xffff in
      Util.Parallel.map_dyn ~domains ~weight:(fun x -> x land 7) f src
      = Array.map f src)

(* ------------------------------------------------------------------ *)
(* Obs                                                                *)
(* ------------------------------------------------------------------ *)

let test_obs_clock_monotonic () =
  let prev = ref (Util.Obs.Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Util.Obs.Clock.now () in
    Alcotest.(check bool) "never decreases" true (t >= !prev);
    prev := t
  done;
  let a = Util.Obs.Clock.now_ns () in
  let b = Util.Obs.Clock.now_ns () in
  Alcotest.(check bool) "ns never decreases" true (Int64.compare b a >= 0)

let test_obs_counters () =
  let c = Util.Obs.counter "test.obs.basic" in
  let (), report =
    Util.Obs.run (fun () ->
        Util.Obs.incr c;
        Util.Obs.add c 4)
  in
  Alcotest.(check int) "value" 5 (Util.Obs.value c);
  Alcotest.(check (option int))
    "in report" (Some 5)
    (List.assoc_opt "test.obs.basic" report.Util.Obs.counters)

let test_obs_disabled_noop () =
  (* the suite may itself run traced (GCR_TRACE=1 in CI), so force the
     disabled state rather than assuming it *)
  let prev = Util.Obs.enabled () in
  Util.Obs.set_enabled false;
  Util.Obs.reset ();
  let c = Util.Obs.counter "test.obs.noop" in
  let g = Util.Obs.gauge "test.obs.noop_gauge" in
  Util.Obs.incr c;
  Util.Obs.set g 7.0;
  let r = Util.Obs.span ~name:"test.noop" (fun () -> 41 + 1) in
  Alcotest.(check int) "span is transparent" 42 r;
  let report = Util.Obs.snapshot () in
  Util.Obs.set_enabled prev;
  Alcotest.(check int) "no counters" 0 (List.length report.Util.Obs.counters);
  Alcotest.(check int) "no gauges" 0 (List.length report.Util.Obs.gauges);
  Alcotest.(check int) "no spans" 0 (List.length report.Util.Obs.spans)

let test_obs_span_nesting () =
  let (), report =
    Util.Obs.run (fun () ->
        Util.Obs.span ~name:"outer" (fun () ->
            Util.Obs.span ~name:"inner" (fun () -> ());
            Util.Obs.span ~name:"inner" (fun () -> ())))
  in
  match report.Util.Obs.spans with
  | [ outer ] ->
    Alcotest.(check string) "outer name" "outer" outer.Util.Obs.name;
    Alcotest.(check int) "outer calls" 1 outer.Util.Obs.calls;
    (match outer.Util.Obs.children with
    | [ inner ] ->
      Alcotest.(check string) "inner name" "inner" inner.Util.Obs.name;
      Alcotest.(check int) "same-name siblings aggregate" 2
        inner.Util.Obs.calls;
      Alcotest.(check bool) "child time <= parent time" true
        (inner.Util.Obs.time_s <= outer.Util.Obs.time_s)
    | kids ->
      Alcotest.failf "expected one aggregated child, got %d" (List.length kids))
  | spans -> Alcotest.failf "expected one top-level span, got %d" (List.length spans)

let test_obs_span_exception_unwind () =
  let (), report =
    Util.Obs.run (fun () ->
        (try
           Util.Obs.span ~name:"a" (fun () ->
               Util.Obs.span ~name:"b" (fun () -> failwith "unwind"))
         with Failure _ -> ());
        (* if the stack did not unwind, "c" would nest under "a"/"b" *)
        Util.Obs.span ~name:"c" (fun () -> ()))
  in
  let names = List.map (fun s -> s.Util.Obs.name) report.Util.Obs.spans in
  Alcotest.(check (list string)) "c is top-level after the raise" [ "a"; "c" ]
    names;
  match report.Util.Obs.spans with
  | [ a; _c ] ->
    Alcotest.(check int) "a still recorded its call" 1 a.Util.Obs.calls;
    (match a.Util.Obs.children with
    | [ b ] -> Alcotest.(check int) "b recorded before raising" 1 b.Util.Obs.calls
    | kids -> Alcotest.failf "expected b under a, got %d kids" (List.length kids))
  | _ -> Alcotest.fail "unexpected span shape"

let test_obs_parallel_counter_totals () =
  let c = Util.Obs.counter "test.obs.par" in
  let n = 1000 in
  let total domains =
    let (), report =
      Util.Obs.run (fun () ->
          Util.Parallel.parallel_for ~domains ~n (fun _ -> Util.Obs.incr c))
    in
    Option.value
      (List.assoc_opt "test.obs.par" report.Util.Obs.counters)
      ~default:0
  in
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "total with %d domains" d)
        n (total d))
    [ 1; 4 ]

let test_obs_json_round_trip () =
  let report =
    {
      Util.Obs.spans =
        [
          {
            Util.Obs.name = "route";
            calls = 2;
            time_s = 0.12345678901234567;
            alloc_words = 1.5e9;
            children =
              [
                {
                  Util.Obs.name = "odd \"name\"\n\twith\\escapes";
                  calls = 1;
                  time_s = 1e-9;
                  alloc_words = 0.0;
                  children = [];
                };
              ];
          };
        ];
      (* counters decode through a float, so stay within its 2^53 exact
         integer range *)
      counters = [ ("a.b", 7); ("z", 1 lsl 52) ];
      gauges = [ ("g", -0.25); ("h", 3.141592653589793) ];
    }
  in
  match Util.Obs.of_json (Util.Obs.to_json report) with
  | Ok got -> Alcotest.(check bool) "round-trips exactly" true (got = report)
  | Error msg -> Alcotest.failf "of_json failed: %s" msg

let test_obs_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Util.Obs.of_json text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" text)
    [ ""; "{"; "[1,2]"; "{\"version\":99,\"spans\":[],\"counters\":{},\"gauges\":{}}";
      "{\"version\":1}"; "{\"version\":1,\"spans\":[],\"counters\":{},\"gauges\":{}}x" ]

(* ------------------------------------------------------------------ *)
(* Popcnt                                                             *)
(* ------------------------------------------------------------------ *)

let test_popcnt_edges () =
  List.iter
    (fun (x, expect) ->
      Alcotest.(check int) (Printf.sprintf "count %d" x) expect (Util.Popcnt.count x))
    [
      (0, 0);
      (1, 1);
      (-1, Sys.int_size);
      (min_int, 1);
      (max_int, Sys.int_size - 1);
      (0b1011, 3);
    ]

let prop_popcnt_stub_matches_ocaml =
  QCheck.Test.make ~name:"Popcnt.stub_count = count_ocaml on all inputs"
    ~count:1000
    QCheck.(
      oneof [ int; oneofl [ 0; 1; -1; min_int; max_int; 1 lsl 62; -2 ] ])
    (fun x ->
      Util.Popcnt.count_ocaml x = Util.Popcnt.stub_count x
      && Util.Popcnt.count x = Util.Popcnt.count_ocaml x)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "popcnt",
        [
          Alcotest.test_case "edge inputs" `Quick test_popcnt_edges;
          qt prop_popcnt_stub_matches_ocaml;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "choose_weighted" `Quick test_prng_choose_weighted;
          Alcotest.test_case "choose_weighted invalid" `Quick test_prng_choose_weighted_invalid;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "bin_heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "single" `Quick test_heap_single;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          qt prop_heap_sorts;
          qt prop_heap_multiset;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "init = sequential" `Quick
            test_parallel_init_matches_sequential;
          Alcotest.test_case "parallel_for disjoint slots" `Quick
            test_parallel_for_disjoint_slots;
          Alcotest.test_case "map" `Quick test_parallel_map;
          Alcotest.test_case "small and empty" `Quick test_parallel_small_and_empty;
          Alcotest.test_case "exceptions propagate" `Quick
            test_parallel_propagates_exceptions;
          Alcotest.test_case "map_dyn = map" `Quick test_map_dyn_matches_map;
          Alcotest.test_case "map_dyn empty and single" `Quick
            test_map_dyn_empty_and_single;
          Alcotest.test_case "map_dyn exceptions propagate" `Quick
            test_map_dyn_propagates_exceptions;
          qt prop_map_dyn_equals_map;
        ] );
      ( "obs",
        [
          Alcotest.test_case "clock monotonic" `Quick test_obs_clock_monotonic;
          Alcotest.test_case "counters" `Quick test_obs_counters;
          Alcotest.test_case "disabled is a no-op" `Quick test_obs_disabled_noop;
          Alcotest.test_case "span nesting" `Quick test_obs_span_nesting;
          Alcotest.test_case "span exception unwind" `Quick
            test_obs_span_exception_unwind;
          Alcotest.test_case "counters under domains" `Quick
            test_obs_parallel_counter_totals;
          Alcotest.test_case "json round trip" `Quick test_obs_json_round_trip;
          Alcotest.test_case "json rejects garbage" `Quick
            test_obs_json_rejects_garbage;
        ] );
    ]
