examples/stream_sensitivity.ml: Activity Benchmarks Format Gcr List Printf Util
