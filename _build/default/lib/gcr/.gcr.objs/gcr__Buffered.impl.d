lib/gcr/buffered.ml: Clocktree Config Gated_tree
