(** Layout-area model (the paper's second evaluation axis).

    Area = clock wiring + control-star wiring + gate/buffer cells. Wire
    area is wire length times the technology's wire pitch area; the control
    star dominates when too many gates are kept, which is what makes the
    paper's Figure 3 "Gated" bars worse than "Buffered" before reduction. *)

type breakdown = {
  clock_wire : float;  (** um^2 of clock-tree wiring *)
  control_wire : float;  (** um^2 of enable star wiring *)
  gates : float;  (** um^2 of masking AND gates *)
  buffers : float;  (** um^2 of clock buffers *)
  total : float;
}

val of_tree : Gated_tree.t -> breakdown

val pp : Format.formatter -> breakdown -> unit
