(** Gate-controller placement and enable-signal star routing.

    The paper's baseline puts one centralized controller at the chip center
    and routes every enable signal as a dedicated (star) wire from the
    controller to its gate. Section 6 sketches the distributed alternative:
    partition the die into [k] equal cells (a [g x g] grid, [k = g^2]) with
    one controller per cell; each gate connects to the controller of its
    cell, shrinking total star length by about [sqrt k]. *)

type t

val centralized : Geometry.Bbox.t -> t
(** One controller at the center of the die. *)

val at : Geometry.Point.t -> t
(** One controller at an explicit location. *)

val distributed : Geometry.Bbox.t -> k:int -> t
(** [k] controllers on a square grid; [k] must be a positive perfect
    square. Raises [Invalid_argument] otherwise. *)

val n_controllers : t -> int

val sites : t -> Geometry.Point.t list
(** Controller locations (cell centers for the distributed form). *)

val site_for : t -> Geometry.Point.t -> Geometry.Point.t
(** The controller serving a gate at the given location. *)

val wire_length : t -> Geometry.Point.t -> float
(** Manhattan length of the star wire from a gate at the given location to
    its controller. *)

val pp : Format.formatter -> t -> unit
