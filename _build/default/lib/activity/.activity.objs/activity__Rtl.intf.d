lib/activity/rtl.mli: Format Module_set
