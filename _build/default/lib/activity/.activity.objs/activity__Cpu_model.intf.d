lib/activity/cpu_model.mli: Instr_stream Rtl Util
