type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let euclidean a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let chebyshev a b = Float.max (Float.abs (a.x -. b.x)) (Float.abs (a.y -. b.y))

let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let lerp a b f = { x = a.x +. ((b.x -. a.x) *. f); y = a.y +. ((b.y -. a.y) *. f) }

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let compare a b =
  match Float.compare a.x b.x with 0 -> Float.compare a.y b.y | c -> c

let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y

let to_string p = Format.asprintf "%a" pp p
