(* The paper's Section 3 worked example, end to end.

   Table 1's four-instruction, six-module RTL and a 20-cycle instruction
   stream with the probabilities worked out in the text: P(M1) = 0.75 and
   P(EN{M5,M6}) = 0.55. We print the IFT (Table 2) and IMATT (Table 3),
   place the six modules on a small die, run the gated clock router and
   cross-check every probability against brute-force stream scans and the
   cycle-accurate simulator.

   Run with:  dune exec examples/microprocessor.exe *)

let () =
  let profile = Activity.Profile.paper_example in
  let rtl = Activity.Profile.rtl profile in
  let stream = Activity.Profile.stream profile in

  Format.printf "=== Table 1: RTL description ===@.%a@." Activity.Rtl.pp rtl;
  Format.printf "=== Instruction stream (%d cycles) ===@.%a@.@."
    (Activity.Instr_stream.length stream)
    Activity.Instr_stream.pp stream;
  Format.printf "=== Table 2: Instruction Frequency Table ===@.%a@."
    Activity.Ift.pp (Activity.Profile.ift profile);
  Format.printf "=== Table 3: IMATT ===@.%a@." Activity.Imatt.pp
    (Activity.Profile.imatt profile);

  (* The probabilities the paper computes by hand in Section 3.2. *)
  let m56 = Activity.Module_set.of_list 6 [ 4; 5 ] in
  Format.printf "P(M1)        = %.3f   (paper: 0.75)@."
    (Activity.Profile.p_module profile 0);
  Format.printf "P(M5 or M6)  = %.3f   (paper: 0.55)@."
    (Activity.Profile.p profile m56);
  Format.printf "Ptr(M5,M6)   = %.4f  (= %d transitions / %d boundaries)@.@."
    (Activity.Profile.ptr profile m56)
    (Activity.Brute.transition_count stream m56)
    (Activity.Instr_stream.length stream - 1);

  (* Place the six modules on a 1.2mm die: datapath modules (M1..M4) in
     the middle band, the rarely used M5/M6 in a corner. *)
  let locs =
    [| (300.0, 600.0); (500.0, 550.0); (700.0, 600.0); (500.0, 750.0);
       (1000.0, 200.0); (1050.0, 320.0) |]
  in
  let sinks =
    Array.mapi
      (fun id (x, y) ->
        Clocktree.Sink.make ~id ~loc:(Geometry.Point.make x y) ~cap:25.0
          ~module_id:id)
      locs
  in
  let config = Gcr.Config.make ~die:(Geometry.Bbox.square ~side:1200.0) () in
  let gated = Gcr.Router.route config profile sinks in
  let reduced = Gcr.Gate_reduction.reduce_greedy gated in
  let buffered = Gcr.Buffered.route config profile sinks in
  Format.printf "=== Routing the six modules ===@.";
  Util.Text_table.print
    (Gcr.Report.comparison_table
       [
         Gcr.Report.of_tree ~name:"buffered" buffered;
         Gcr.Report.of_tree ~name:"gated" gated;
         Gcr.Report.of_tree ~name:"gated+reduced" reduced;
       ]);

  (* Cycle-accurate validation over the exact 20-cycle stream. *)
  Gsim.Check.validate gated;
  Gsim.Check.validate reduced;
  Format.printf "@.cycle-accurate check (gated):   %a@." Gsim.Check.pp
    (Gsim.Check.compare gated);
  Format.printf "cycle-accurate check (reduced): %a@." Gsim.Check.pp
    (Gsim.Check.compare reduced);

  Gcr.Svg.write_file "microprocessor.svg" (Gcr.Svg.render reduced);
  Format.printf "wrote microprocessor.svg@."
