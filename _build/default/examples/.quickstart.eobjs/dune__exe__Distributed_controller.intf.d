examples/distributed_controller.mli:
