lib/activity/instr_stream.mli: Format Module_set Rtl
