(** Gate and buffer sizing.

    The paper notes that the masking gates "also serve as buffers and can
    be sized to adjust the phase delay of the clock signal". This pass
    assigns a per-edge transistor-width factor: a cell's drive resistance
    scales with 1/size while its input capacitance and area scale with
    size, so up-sizing a gate that drives a heavy subtree cuts its stage
    delay at the cost of presenting a bigger load (and area) upstream.

    The policy is load-proportional: size each cell to its downstream
    capacitance relative to a reference load, so every stage sees roughly
    the same drive-resistance x load product (uniform effective fanout).
    Sizes are computed once from the unsized embedding, then the tree is
    re-embedded (the zero-skew splits see the new caps/drives), which is
    sufficient in practice since sizing perturbs the wire loads only
    mildly. *)

val driver_load : Gated_tree.t -> int -> float
(** Capacitance the cell on the edge above the node drives: the edge wire
    plus the downstream capacitance at the node (from the current
    embedding). 0 for the root or an unhardwared edge. *)

val proportional :
  ?min_scale:float -> ?max_scale:float -> ?reference:float -> Gated_tree.t -> Gated_tree.t
(** Load-proportional sizing of every gate and buffer individually,
    clamped to [min_scale, max_scale] (defaults 0.5 and 8). [reference] is
    the load that keeps unit size; it defaults to the median driver load.

    {b Caveat} (measured; see the sizing ablation in [bench/main.ml]):
    under exact zero skew, heterogeneous drive strengths between sibling
    gates create delay offsets that only balancing wire can absorb, so
    naive per-gate sizing inflates wirelength and switched capacitance.
    Prefer {!tapered}, which keeps siblings homogeneous. Raises
    [Invalid_argument] on an inverted clamp range. *)

val tapered :
  ?min_scale:float -> ?max_scale:float -> ?reference:float -> Gated_tree.t -> Gated_tree.t
(** Classic tapered clock-tree sizing: one scale per tree level (the mean
    driver load of that level against [reference], default the mean of the
    level means), so siblings always share a drive strength and the
    zero-skew balance is undisturbed — upper levels get strong drivers,
    leaf levels small ones. Raises [Invalid_argument] on an inverted clamp
    range or non-positive reference. *)

val uniform : Gated_tree.t -> float -> Gated_tree.t
(** Scale every gate and buffer by the same factor (the simple knob for
    delay/area exploration). Raises [Invalid_argument] on a non-positive
    factor. *)
