lib/sim/trace.ml: Activity Array Clocktree Gcr Util
