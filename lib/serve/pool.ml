type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (slot:int -> unit) Queue.t;
  queue_cap : int;
  mutable draining : bool;
  domains : unit Domain.t array Lazy.t;
      (* spawned after the record exists so workers can close over it *)
  ewma_ns : float Atomic.t;
  backstop : int Atomic.t;
}

let depth t =
  Mutex.lock t.mutex;
  let d = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  d

let service_time_ms t = Atomic.get t.ewma_ns /. 1e6

let backstop_errors t = Atomic.get t.backstop

let record_time t dt_ns =
  (* Lossy-under-race EWMA update is fine: this is a hint, not an
     accounting invariant. *)
  let prev = Atomic.get t.ewma_ns in
  let next = if prev = 0.0 then dt_ns else (0.8 *. prev) +. (0.2 *. dt_ns) in
  Atomic.set t.ewma_ns next

let worker t slot =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.draining do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.jobs then begin
      (* draining and nothing left *)
      Mutex.unlock t.mutex;
      ()
    end
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      let t0 = Util.Obs.Clock.now_ns () in
      (try job ~slot
       with _ ->
         (* The submitter's guard is the real boundary; anything landing
            here is a bug there, but it must not kill the worker. *)
         Atomic.incr t.backstop);
      record_time t (Int64.to_float (Int64.sub (Util.Obs.Clock.now_ns ()) t0));
      loop ()
    end
  in
  loop ()

let create ~workers ~queue_cap () =
  if workers <= 0 then invalid_arg "Pool.create: non-positive workers";
  if queue_cap <= 0 then invalid_arg "Pool.create: non-positive queue_cap";
  let rec t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      queue_cap;
      draining = false;
      domains =
        lazy (Array.init workers (fun slot -> Domain.spawn (fun () -> worker t slot)));
      ewma_ns = Atomic.make 0.0;
      backstop = Atomic.make 0;
    }
  in
  ignore (Lazy.force t.domains);
  t

let workers t = Array.length (Lazy.force t.domains)

let submit t job =
  Mutex.lock t.mutex;
  let verdict =
    if t.draining then `Draining
    else begin
      let d = Queue.length t.jobs in
      if d >= t.queue_cap then `Full d
      else begin
        Queue.push job t.jobs;
        Condition.signal t.nonempty;
        `Accepted
      end
    end
  in
  Mutex.unlock t.mutex;
  verdict

let drain t =
  Mutex.lock t.mutex;
  let first = not t.draining in
  t.draining <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  if first then Array.iter Domain.join (Lazy.force t.domains)
