type comparison = {
  analytic_clock : float;
  simulated_clock : float;
  analytic_ctrl : float;
  simulated_ctrl : float;
  rel_error_clock : float;
  rel_error_ctrl : float;
}

let rel = Util.Tol.rel_error

let compare tree =
  let stream = Activity.Profile.stream tree.Gcr.Gated_tree.profile in
  let sim = Gate_sim.run tree stream in
  let analytic_clock = Gcr.Cost.w_clock tree in
  let analytic_ctrl = Gcr.Cost.w_ctrl tree in
  {
    analytic_clock;
    simulated_clock = sim.Gate_sim.clock_switched;
    analytic_ctrl;
    simulated_ctrl = sim.Gate_sim.ctrl_switched;
    rel_error_clock = rel analytic_clock sim.Gate_sim.clock_switched;
    rel_error_ctrl = rel analytic_ctrl sim.Gate_sim.ctrl_switched;
  }

let validate ?(tolerance = 1e-9) ?(structural = true) tree =
  if structural then Invariant.structural tree;
  let c = compare tree in
  (* Tol.close rather than a rel_error threshold so a NaN on either side
     is a mismatch, never a silent pass. *)
  if not (Util.Tol.close ~rel:tolerance c.analytic_clock c.simulated_clock) then
    Util.Gcr_error.mismatch ~stage:"Check.validate"
      "clock switched capacitance mismatch (analytic %.9g, simulated %.9g)"
      c.analytic_clock c.simulated_clock;
  if not (Util.Tol.close ~rel:tolerance c.analytic_ctrl c.simulated_ctrl) then
    Util.Gcr_error.mismatch ~stage:"Check.validate"
      "control switched capacitance mismatch (analytic %.9g, simulated %.9g)"
      c.analytic_ctrl c.simulated_ctrl

let pp ppf c =
  Format.fprintf ppf
    "clock: analytic %.3f vs simulated %.3f (rel %.2g); control: analytic %.3f vs \
     simulated %.3f (rel %.2g)"
    c.analytic_clock c.simulated_clock c.rel_error_clock c.analytic_ctrl
    c.simulated_ctrl c.rel_error_ctrl
