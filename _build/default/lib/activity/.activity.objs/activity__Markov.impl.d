lib/activity/markov.ml: Array Cpu_model Module_set Rtl
