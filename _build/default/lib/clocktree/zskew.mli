(** Exact zero-skew merging under the Elmore delay model (Tsay, ICCAD'91),
    extended with optional masking gates / buffers at the head of each
    branch as in Section 4.1 of the gated-clock-routing paper.

    A branch is a subtree as seen from the merge point: its root-to-sink
    Elmore delay, its downstream capacitance, and an optional gate sitting
    at the head of the connecting wire (immediately below the new internal
    node). A gate decouples the subtree: the capacitance presented upward
    collapses to the gate's input capacitance, while the gate's intrinsic
    delay and drive resistance add to the branch delay. *)

type branch = {
  delay : float;  (** Elmore delay from the branch root to its sinks *)
  cap : float;  (** downstream capacitance at the branch root *)
  gate : Tech.gate option;  (** masking gate / buffer at the head of the edge *)
}

type side = No_snake | Snake_a | Snake_b

type split = {
  ea : float;  (** wire length allotted to branch a (>= 0) *)
  eb : float;  (** wire length allotted to branch b (>= 0) *)
  merged_delay : float;  (** equalized delay from the new node to all sinks *)
  merged_cap : float;  (** downstream capacitance at the new node *)
  snaked : side;  (** whether one side needed wire elongation *)
}

val branch_delay : Tech.t -> branch -> float -> float
(** [branch_delay tech b e]: Elmore delay from the new node through a wire
    of length [e] (plus the branch gate, if any) down to the sinks of [b].
    With a gate [g]: [g.intrinsic + g.drive * (c*e + cap) + r*e*(c*e/2 +
    cap) + delay]; without: [r*e*(c*e/2 + cap) + delay]. *)

val branch_head_cap : Tech.t -> branch -> float -> float
(** Capacitance the branch contributes at the new node: the gate input
    capacitance when gated, otherwise [c*e + cap]. *)

val delay_poly : Tech.t -> branch -> float * float * float
(** [(base, lin, quad)] such that {!branch_delay} [= base + lin*e +
    quad*e^2] — the polynomial view used by the bounded-skew extension. *)

val wire_for_delay : float * float * float -> float -> float
(** [wire_for_delay poly target] is the smallest wire length [e >= 0] with
    delay at least [target] (0 when already slower). Raises
    [Invalid_argument] when the polynomial cannot reach the target (zero
    wire parasitics). *)

val split : Tech.t -> branch -> branch -> dist:float -> split
(** Solve the zero-skew balance [branch_delay a ea = branch_delay b eb]
    with [ea + eb = dist] when the balance point lies inside the wire;
    otherwise snake: set the faster side's wire to the full distance plus a
    detour ([ea = 0] or [eb = 0] and the other side longer than [dist]).
    Guarantees [ea, eb >= 0], [ea + eb >= dist], and
    [|branch_delay a ea - branch_delay b eb| <= 1e-6 * (1 + merged_delay)].
    Raises [Invalid_argument] on a negative distance. *)
