lib/clocktree/tech.mli: Format
