lib/gcr/activity_router.ml: Activity Array Clocktree Config Enable Gated_tree Geometry
