lib/geometry/bbox.ml: Array Float Format Point
