(** Instruction streams: the trace of instructions a processor executes,
    one per clock cycle (Section 3.2 of the paper).

    A stream is bound to the {!Rtl} description it indexes into. All module
    activity information used by the router derives from a single scan of a
    stream (via {!Ift} and {!Imatt}); {!Brute} re-scans it as a test
    oracle. *)

type t

val make : Rtl.t -> int array -> t
(** [make rtl instrs] validates every index against [rtl]. Raises
    [Invalid_argument] on an out-of-range instruction or an empty stream. *)

val of_names : Rtl.t -> string list -> t
(** Build from instruction names (e.g. ["I1"; "I3"; ...]). Raises
    [Invalid_argument] on an unknown name. *)

val rtl : t -> Rtl.t

val length : t -> int
(** Number of cycles [B]. *)

val get : t -> int -> int
(** Instruction index executed at cycle [t] (0-based). *)

val active_modules : t -> int -> Module_set.t
(** Modules active at cycle [t]. *)

val counts : t -> int array
(** Per-instruction occurrence counts; sums to [length]. *)

val concat : t list -> t
(** Concatenate streams over the same RTL, in order. Raises
    [Invalid_argument] on an empty list or mismatched RTL universes. *)

val slice : t -> pos:int -> len:int -> t
(** [slice t ~pos ~len] is cycles [pos .. pos+len-1]. Raises
    [Invalid_argument] when the range leaves the stream or [len <= 0]. *)

val repeat : t -> int -> t
(** [repeat t k] plays the stream [k >= 1] times back to back. *)

val avg_active_fraction : t -> float
(** Mean over cycles of (active modules / total modules): the paper's
    average module activity. *)

val paper_example : t
(** A 20-cycle stream over {!Rtl.paper_example} with the frequency profile
    of the paper's Section 3.2 walkthrough: [P(M1) = 0.75] and
    [P(M5 or M6) = 0.55]. *)

val pp : Format.formatter -> t -> unit
