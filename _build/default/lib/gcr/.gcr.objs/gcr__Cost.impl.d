lib/gcr/cost.ml: Array Clocktree Config Controller Enable Gated_tree
