(** Top-down embedding — phase 2 of DME.

    Fixes a concrete location for every node inside its merging region:
    the root is placed at the region point nearest to a given anchor
    (typically the clock source at the chip center); every other node at
    the point of its region nearest to its parent's location, which is
    always within the zero-skew wire length. *)

type t = {
  topo : Topo.t;
  mseg : Mseg.t;
  loc : Geometry.Point.t array;  (** embedded location per node *)
}

val build :
  Tech.t ->
  Topo.t ->
  sinks:Sink.t array ->
  gate_on_edge:(int -> Tech.gate option) ->
  root_anchor:Geometry.Point.t ->
  t
(** Runs {!Mseg.build} then the top-down placement. *)

val of_mseg :
  Topo.t -> Mseg.t -> root_anchor:Geometry.Point.t -> t
(** Placement only, for callers that already hold the merging segments. *)

val edge_len : t -> int -> float
(** Wire length of the edge above the node (detours included). *)

val total_wirelength : t -> float

val gate_location : t -> int -> Geometry.Point.t
(** Location of the masking gate on the edge above node [v]: the head of
    the edge, i.e. the parent's embedded location (the node's own location
    at the root). *)

val check_consistency : t -> unit
(** Asserts the embedding invariants: every location lies in its node's
    merging region and every edge's endpoints are no farther apart than its
    assigned wire length. Raises [Failure] with a diagnostic otherwise. *)
