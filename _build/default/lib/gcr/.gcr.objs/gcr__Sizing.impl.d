lib/gcr/sizing.ml: Array Clocktree Config Float Gated_tree Hashtbl Option Util
