lib/gcr/refine.ml: Clocktree Cost Gated_tree List
