type t = Arena.t

(* The two inflated child regions meet in exact arithmetic; under floating
   point they can miss by a hair, so retry with a small relative slack and
   finally fall back to the midpoint of the closest pair. *)
let merge_region ra ea rb eb dist =
  let ta = Geometry.Rect.inflate ra ea and tb = Geometry.Rect.inflate rb eb in
  match Geometry.Rect.intersect ta tb with
  | Some r -> r
  | None ->
    let slack = 1e-9 *. (1.0 +. dist) in
    (match
       Geometry.Rect.intersect (Geometry.Rect.inflate ta slack)
         (Geometry.Rect.inflate tb slack)
     with
    | Some r -> r
    | None ->
      let p, q = Geometry.Rect.nearest_pair ta tb in
      Geometry.Rect.of_rot
        { Geometry.Rot.u = (p.Geometry.Rot.u +. q.Geometry.Rot.u) /. 2.0;
          v = (p.Geometry.Rot.v +. q.Geometry.Rot.v) /. 2.0;
        })

let build tech topo ~sinks ~gate_on_edge =
  Sink.validate_array sinks;
  if Array.length sinks <> Topo.n_sinks topo then
    invalid_arg "Mseg.build: sink count does not match topology";
  let n_sinks = Topo.n_sinks topo in
  let t = Arena.create ~n_sinks in
  t.Arena.n_nodes <- Topo.n_nodes topo;
  Topo.iter_bottom_up topo (fun v ->
      (match Topo.parent topo v with
      | Some p -> t.Arena.parent.(v) <- p
      | None -> t.Arena.parent.(v) <- -1);
      match Topo.children topo v with
      | None ->
        Arena.set_region_point t v sinks.(v).Sink.loc;
        t.Arena.cap.(v) <- sinks.(v).Sink.cap
      | Some (a, b) ->
        t.Arena.left.(v) <- a;
        t.Arena.right.(v) <- b;
        let branch c =
          { Zskew.delay = t.Arena.delay.(c); cap = t.Arena.cap.(c); gate = gate_on_edge c }
        in
        let dist = Arena.dist t a b in
        let split = Zskew.split tech (branch a) (branch b) ~dist in
        t.Arena.edge_len.(a) <- split.Zskew.ea;
        t.Arena.edge_len.(b) <- split.Zskew.eb;
        (match split.Zskew.snaked with
        | Zskew.No_snake -> ()
        | Zskew.Snake_a -> Arena.set_snaked t a true
        | Zskew.Snake_b -> Arena.set_snaked t b true);
        Arena.set_region t v
          (merge_region (Arena.region t a) split.Zskew.ea (Arena.region t b)
             split.Zskew.eb dist);
        t.Arena.delay.(v) <- split.Zskew.merged_delay;
        t.Arena.cap.(v) <- split.Zskew.merged_cap;
        t.Arena.wl.(v) <-
          t.Arena.wl.(a) +. t.Arena.wl.(b) +. split.Zskew.ea +. split.Zskew.eb);
  t

let region = Arena.region
let delay (t : t) v = t.Arena.delay.(v)
let cap (t : t) v = t.Arena.cap.(v)
let edge_len (t : t) v = t.Arena.edge_len.(v)
let set_edge_len (t : t) v x = t.Arena.edge_len.(v) <- x
let snaked = Arena.snaked
let subtree_wirelength (t : t) v = t.Arena.wl.(v)
let copy = Arena.copy

let total_wirelength (t : t) =
  let acc = ref 0.0 in
  for v = 0 to t.Arena.n_nodes - 1 do
    acc := !acc +. t.Arena.edge_len.(v)
  done;
  !acc
