type t = {
  n_sinks : int;
  left : int array; (* -1 for leaves *)
  right : int array;
  parent : int array; (* -1 for the root *)
}

let of_merges ~n_sinks merges =
  if n_sinks <= 0 then invalid_arg "Topo.of_merges: need at least one sink";
  if Array.length merges <> n_sinks - 1 then
    invalid_arg
      (Printf.sprintf "Topo.of_merges: expected %d merges, got %d" (n_sinks - 1)
         (Array.length merges));
  let n_nodes = (2 * n_sinks) - 1 in
  let left = Array.make n_nodes (-1) in
  let right = Array.make n_nodes (-1) in
  let parent = Array.make n_nodes (-1) in
  Array.iteri
    (fun k (a, b) ->
      let node = n_sinks + k in
      let check_child c =
        if c < 0 || c >= node then
          invalid_arg
            (Printf.sprintf "Topo.of_merges: merge %d uses invalid child %d" k c);
        if parent.(c) <> -1 then
          invalid_arg
            (Printf.sprintf "Topo.of_merges: node %d used as a child twice" c)
      in
      check_child a;
      check_child b;
      if a = b then invalid_arg "Topo.of_merges: merging a node with itself";
      left.(node) <- a;
      right.(node) <- b;
      parent.(a) <- node;
      parent.(b) <- node)
    merges;
  (* Exactly the last-created node (or the lone sink) must be parentless. *)
  for v = 0 to n_nodes - 2 do
    if parent.(v) = -1 then
      invalid_arg (Printf.sprintf "Topo.of_merges: node %d is disconnected" v)
  done;
  { n_sinks; left; right; parent }

let n_sinks t = t.n_sinks

let n_nodes t = (2 * t.n_sinks) - 1

let root t = n_nodes t - 1

let is_leaf t v = v < t.n_sinks

let children t v = if is_leaf t v then None else Some (t.left.(v), t.right.(v))

let parent t v = if t.parent.(v) = -1 then None else Some (t.parent.(v))

let depth t v =
  let rec up v acc = if t.parent.(v) = -1 then acc else up t.parent.(v) (acc + 1) in
  up v 0

let rec leaves_under t v =
  if is_leaf t v then [ v ]
  else
    List.merge compare (leaves_under t t.left.(v)) (leaves_under t t.right.(v))

let fold_postorder t leaf node =
  let results = Array.make (n_nodes t) None in
  for v = 0 to n_nodes t - 1 do
    let r =
      if is_leaf t v then leaf v
      else
        match (results.(t.left.(v)), results.(t.right.(v))) with
        | Some a, Some b -> node v a b
        | _ -> assert false (* ids ascend bottom-up by construction *)
    in
    results.(v) <- Some r
  done;
  match results.(root t) with Some r -> r | None -> assert false

let iter_bottom_up t f =
  for v = 0 to n_nodes t - 1 do
    f v
  done

let iter_top_down t f =
  for v = n_nodes t - 1 downto 0 do
    f v
  done

let internal_nodes t = List.init (t.n_sinks - 1) (fun k -> t.n_sinks + k)

let is_ancestor t a v =
  let rec up v = v = a || (t.parent.(v) <> -1 && up t.parent.(v)) in
  up v

let swap t u v =
  let root_id = root t in
  if u = root_id || v = root_id then invalid_arg "Topo.swap: cannot swap the root";
  if is_ancestor t u v || is_ancestor t v u then
    invalid_arg "Topo.swap: nodes are on one root path";
  (* rebuild as a nested tree with the two subtrees exchanged, then
     re-emit merges in postorder so ids stay children-before-parents *)
  let rec subtree x =
    if x = u then `Sub v
    else if x = v then `Sub u
    else if is_leaf t x then `Leaf x
    else `Node (subtree t.left.(x), subtree t.right.(x))
  (* `Sub y stands for the original subtree at y, moved wholesale *)
  and original y =
    if is_leaf t y then `Leaf y
    else `Node (original t.left.(y), original t.right.(y))
  in
  let rec resolve = function
    | `Sub y -> original y
    | `Leaf _ as l -> l
    | `Node (l, r) -> `Node (resolve l, resolve r)
  in
  let tree = resolve (subtree root_id) in
  let merges = ref [] in
  let next = ref t.n_sinks in
  let rec emit = function
    | `Leaf s -> s
    | `Node (l, r) ->
      let a = emit l in
      let b = emit r in
      let id = !next in
      incr next;
      merges := (a, b) :: !merges;
      id
  in
  let _root = emit tree in
  of_merges ~n_sinks:t.n_sinks (Array.of_list (List.rev !merges))

let equal a b =
  a.n_sinks = b.n_sinks && a.left = b.left && a.right = b.right

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun v ->
      Format.fprintf ppf "node %d = (%d, %d)@ " v t.left.(v) t.right.(v))
    (internal_nodes t);
  Format.fprintf ppf "@]"
