(** Loopback fault campaign: N concurrent clients x server fault
    injection against a live in-process daemon — the [gcr fuzz --serve]
    engine and the tentpole's acceptance proof.

    For each case a {!Conformance.Faults.Server.plan} is drawn
    deterministically and interpreted against the daemon over a real
    socket: well-formed requests must come back {e answered and
    bit-identical} (the response {!Digest} is compared against a local
    one-shot {!Gcr.Flow.run} of the same scenario); every injected fault
    — poison scenario, zero budget, oversized frame, junk prefix,
    truncated frame, stalled write — must be {e diagnosed} with a typed
    reject or {e absorbed} (decoder resync, counted disconnect) without
    disturbing any other connection. A wrong answer, an untyped failure,
    a missing response, or a daemon crash is a {e silent} verdict; zero
    silents, zero worker backstop errors and a clean drain are the pass
    criterion. *)

type stats = {
  faults : int;
  diagnosed : int;
  absorbed : int;
  identical : int;  (** answers digest-matched against one-shot *)
  silent : (string * int * string) list;  (** family, case, why *)
  coverage : (string * int) list;
  server : Server.stats;  (** the drained daemon's own accounting *)
  elapsed_s : float;
}

val run : ?count:int -> ?seed:int -> ?clients:int -> unit -> stats
(** Drive [count] (default 500) fault cases from [seed] (default 0)
    across [clients] (default 4) concurrent client threads, against a
    fresh daemon on a private Unix socket. Returns after the daemon has
    drained. *)

val passed : stats -> bool
(** No silents, no backstop errors, clean drain. *)

val pp_stats : Format.formatter -> stats -> unit
