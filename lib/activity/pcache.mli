(** Memoized signal-probability queries.

    [Profile.p] scans the whole IFT (every instruction's used-module set)
    per call; the activity-aware greedy merge asks for the probability of
    the same candidate unions over and over while a pair sits in the
    frontier. This cache keys probabilities by module set in a hash table
    and evaluates candidate unions in a reusable scratch buffer, so a
    repeated query costs one O(words) union + lookup and allocates
    nothing.

    The table is bounded (capped bucket count, short per-bucket chains
    that stop admitting entries when full), so on adversarial workloads
    where every queried set is distinct the cache degrades to an
    allocation-free direct computation with a small constant probe
    overhead, instead of retaining an unbounded set of frozen keys. *)

type t

val create : ?capacity:int -> Profile.t -> t
(** Fresh, empty cache over the profile's module universe. [capacity]
    (expected number of distinct memoized sets, default 0) pre-sizes the
    bucket array so that many entries are admitted without intermediate
    resizes — useful for cheap short-lived per-region caches in the
    sharded router. Raises [Invalid_argument] when negative. *)

val profile : t -> Profile.t

val p : t -> Module_set.t -> float
(** Memoized {!Profile.p}. *)

val p_union : t -> Module_set.t -> Module_set.t -> float
(** [p_union c a b] = [Profile.p profile (union a b)] without allocating
    the union (except on the first query for that set). Raises
    [Invalid_argument] on a universe mismatch. *)

val p_union_batch : t -> Module_set.t -> ?n:int -> Module_set.t array -> float array -> unit
(** [p_union_batch c a bs out] fills [out.(i)] with [p_union c a bs.(i)]
    for [i < n] (default: all of [bs]) — the batched call shape
    {!Clocktree.Greedy}'s [cost_many] wants. Element-wise identical to
    the scalar calls: each element counts exactly one hit or one miss in
    {!stats} and populates the memo table the same way. Raises
    [Invalid_argument] when [n] exceeds either array. *)

val stats : t -> int * int
(** [(hits, misses)] since creation or the last {!reset_stats}. *)

val reset_stats : t -> unit
(** Zero the hit/miss counters so long-lived caches (fuzz loops, benches)
    can report per-run rates. Keeps the memoized entries and the bypass
    decision — only the accounting restarts. Un-flushed {!flush_obs}
    deltas are discarded. *)

val reset : t -> unit
(** Empty the cache for reuse: drop every memoized entry (the bucket
    array keeps its size), clear the bypass decision and zero the stats.
    A per-region cache can be reset between regions instead of
    reallocated. *)

val flush_obs : t -> unit
(** Publish the hit/miss counts accumulated since the last flush to the
    process-wide [pcache.hits]/[pcache.misses] {!Util.Obs} counters.
    Instances owned by worker domains count locally (no atomics on the
    query path) and their owners flush once at the end, so the global
    counters are an exact sum across domains instead of a racy
    interleaving. *)
