let magic = "GCR1"

let header_len = 8

let default_max_frame = 1 lsl 24

let encode ?(max_frame = default_max_frame) payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg
      (Printf.sprintf "Frame.encode: %d-byte payload exceeds the %d-byte limit"
         n max_frame);
  let b = Buffer.create (header_len + n) in
  Buffer.add_string b magic;
  Buffer.add_uint8 b ((n lsr 24) land 0xff);
  Buffer.add_uint8 b ((n lsr 16) land 0xff);
  Buffer.add_uint8 b ((n lsr 8) land 0xff);
  Buffer.add_uint8 b (n land 0xff);
  Buffer.add_string b payload;
  Buffer.contents b

type event = Frame of string | Junk of { skipped : int; at : int }

(* The buffer is a growable byte array with a consumed prefix [pos]:
   [feed] appends at [len], [next] consumes from [pos], and the live
   window slides back to 0 whenever the dead prefix dominates, so a
   long-lived connection's decoder stays at O(one frame) memory. *)
type decoder = {
  max_frame : int;
  mutable buf : Bytes.t;
  mutable pos : int;  (* first unconsumed byte *)
  mutable len : int;  (* end of valid data *)
  mutable consumed : int;  (* stream offset of [pos] *)
  mutable oversized : int option;  (* sticky poison *)
}

let decoder ?(max_frame = default_max_frame) () =
  {
    max_frame;
    buf = Bytes.create 4096;
    pos = 0;
    len = 0;
    consumed = 0;
    oversized = None;
  }

let compact d =
  if d.pos > 0 && (d.pos = d.len || d.pos > Bytes.length d.buf / 2) then begin
    Bytes.blit d.buf d.pos d.buf 0 (d.len - d.pos);
    d.len <- d.len - d.pos;
    d.pos <- 0
  end

let feed d ?(off = 0) ?len chunk =
  let clen = match len with Some l -> l | None -> String.length chunk - off in
  if off < 0 || clen < 0 || off + clen > String.length chunk then
    invalid_arg "Frame.feed: invalid substring";
  compact d;
  if d.len + clen > Bytes.length d.buf then begin
    let cap = ref (2 * Bytes.length d.buf) in
    while d.len + clen > !cap do
      cap := 2 * !cap
    done;
    let nb = Bytes.create !cap in
    Bytes.blit d.buf 0 nb 0 d.len;
    d.buf <- nb
  end;
  Bytes.blit_string chunk off d.buf d.len clen;
  d.len <- d.len + clen

let available d = d.len - d.pos

(* Could the buffered bytes starting at [i] still turn into a frame
   header? True when every available byte matches the magic prefix. *)
let magic_prefix_at d i =
  let upto = Int.min (String.length magic) (d.len - i) in
  let rec go k = k >= upto || (Bytes.get d.buf (i + k) = magic.[k] && go (k + 1)) in
  go 0

let skip_junk d =
  let start = d.pos in
  let i = ref d.pos in
  while !i < d.len && not (magic_prefix_at d !i) do
    incr i
  done;
  let skipped = !i - start in
  if skipped > 0 then begin
    d.pos <- !i;
    let at = d.consumed in
    d.consumed <- d.consumed + skipped;
    Some (Junk { skipped; at })
  end
  else None

let next d =
  match d.oversized with
  | Some n -> Error (`Oversized n)
  | None -> (
    match skip_junk d with
    | Some _ as junk -> Ok junk
    | None ->
      if available d < header_len then Ok None
      else begin
        let b k = Char.code (Bytes.get d.buf (d.pos + 4 + k)) in
        let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
        if n > d.max_frame then begin
          (* Do not resync: the magic bytes may legitimately occur inside
             the oversized body, so any recovery point would be a guess.
             Poison the decoder and let the caller drop the link. *)
          d.oversized <- Some n;
          Error (`Oversized n)
        end
        else if available d < header_len + n then Ok None
        else begin
          let payload = Bytes.sub_string d.buf (d.pos + header_len) n in
          d.pos <- d.pos + header_len + n;
          d.consumed <- d.consumed + header_len + n;
          Ok (Some (Frame payload))
        end
      end)

let awaiting d = available d

let stream_offset d = d.consumed + available d
