lib/formats/report_csv.ml: Fun Gcr List Printf String
