(** Windowed power traces: switched capacitance over time.

    Averages (the paper's metric) hide bursts; this module replays the
    stream and reports per-window switched capacitance, exposing the
    peak-vs-average behaviour of a gated tree — idle phases draw almost
    nothing, busy loops draw close to the buffered tree's constant power. *)

type t = {
  window : int;  (** nominal cycles per window *)
  cycles : int array;  (** actual cycles covered by each window *)
  clock : float array;  (** mean fF/cycle switched in the clock tree, per window *)
  ctrl : float array;  (** mean fF/cycle switched in the enable star, per window *)
  total : float array;
}

val power_trace : Gcr.Gated_tree.t -> Activity.Instr_stream.t -> window:int -> t
(** Replay the stream; window [w >= 1] cycles (the last window may be
    shorter and is averaged over its actual length). Raises
    [Invalid_argument] on a non-positive window, a single-cycle stream or
    a module-universe mismatch. *)

val peak : t -> float
(** Highest per-window total. *)

val mean : t -> float
(** Cycle-weighted mean of the per-window totals = overall average
    switched capacitance per cycle (equals {!Gate_sim.run}'s clock+control
    totals up to the control tree's per-boundary vs per-cycle
    normalization). *)

val peak_to_average : t -> float
(** {!peak} / {!mean} (infinity when the mean is 0). *)
