lib/gcr/area.ml: Array Clocktree Config Cost Format Gated_tree
