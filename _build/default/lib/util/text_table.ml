type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  { title; headers = List.map fst cols; aligns = List.map snd cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Text_table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_float_row t ?(decimals = 3) label xs =
  add_row t (label :: List.map (fun x -> Printf.sprintf "%.*f" decimals x) xs)

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row ->
        match row with
        | Separator -> widths
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  let rule () =
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    let rec go i cells widths aligns =
      match (cells, widths, aligns) with
      | [], [], [] -> ()
      | c :: cells, w :: widths, a :: aligns ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a w c);
        go (i + 1) cells widths aligns
      | _ -> assert false
    in
    go 0 cells widths t.aligns;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  rule ();
  List.iter (function Cells cells -> emit cells | Separator -> rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)
