examples/custom_design.ml: Activity Array Clocktree Format Formats Gcr Geometry Gsim String Util
