(** Struct-of-arrays flat storage for clock-tree nodes.

    Every per-node quantity the DME pipeline carries — merging region,
    zero-skew delay, downstream capacitance, parent-edge wire length,
    subtree wirelength, embedded location, snake flag, topology links —
    lives in one flat column per field instead of an array of heap-boxed
    records. A million-sink tree is then a handful of contiguous float
    and int buffers: bottom-up and top-down sweeps walk them in stride-1
    order, region sub-arenas are cheap to build and release (no
    per-node boxes for the GC to trace), and hot pairwise queries
    ({!dist}) read four floats per side without materializing a
    {!Geometry.Rect.t}.

    The merging region of node [v] is the rotated-frame rectangle
    [[ulo.(v), uhi.(v)] x [vlo.(v), vhi.(v)]] (see {!Geometry.Rect});
    a capacity of [2 * n_sinks - 1] covers any full merge history.
    [n_nodes] tracks how many ids are currently defined: construction
    ({!Mseg.build}) defines all of them up front, incremental growth
    ({!Grow}) appends one per merge. *)

type t = {
  n_sinks : int;
  mutable n_nodes : int;  (** ids in [0, n_nodes) are defined *)
  ulo : float array;  (** merging-region bounds, rotated frame *)
  uhi : float array;
  vlo : float array;
  vhi : float array;
  delay : float array;  (** zero-skew Elmore delay node -> sinks *)
  cap : float array;  (** downstream capacitance at the node *)
  edge_len : float array;  (** wire length of the edge above the node *)
  wl : float array;  (** total wirelength of the subtree below the node *)
  px : float array;  (** embedded chip-space location (x) *)
  py : float array;  (** embedded chip-space location (y) *)
  snaked : Bytes.t;  (** 1 when the edge above the node is elongated *)
  left : int array;  (** topology columns; -1 where undefined *)
  right : int array;
  parent : int array;
}

val create : n_sinks:int -> t
(** Columns of capacity [2 * n_sinks - 1], with [n_nodes = 0], floats
    zeroed and topology links [-1]. Raises [Invalid_argument] when
    [n_sinks <= 0]. *)

val capacity : t -> int

val region : t -> int -> Geometry.Rect.t
(** Merging region of one node, materialized. *)

val set_region : t -> int -> Geometry.Rect.t -> unit

val set_region_point : t -> int -> Geometry.Point.t -> unit
(** Degenerate region holding a single chip-space point (a sink pin). *)

val dist : t -> int -> int -> float
(** Manhattan distance between two nodes' merging regions — the
    Chebyshev interval gap over the four bound columns; equals
    [Geometry.Rect.distance (region t a) (region t b)] exactly, without
    allocating either rectangle. *)

val center_point : t -> int -> Geometry.Point.t
(** Chip-space center of the node's merging region
    (= [Geometry.Rect.center_point (region t v)]). *)

val loc : t -> int -> Geometry.Point.t

val set_loc : t -> int -> Geometry.Point.t -> unit

val snaked : t -> int -> bool

val set_snaked : t -> int -> bool -> unit

val copy : t -> t
(** Deep copy — no column is shared with the original. *)

(** {1 Round-trip}

    The boxed-record view of one node, for property tests and
    interchange: {!of_nodes} o {!to_nodes} is the identity on every
    defined node. *)

type node = {
  node_region : Geometry.Rect.t;
  node_delay : float;
  node_cap : float;
  node_edge_len : float;
  node_wl : float;
  node_loc : Geometry.Point.t;
  node_snaked : bool;
  node_left : int;
  node_right : int;
  node_parent : int;
}

val to_nodes : t -> node array
(** The [n_nodes] defined nodes, boxed. *)

val of_nodes : n_sinks:int -> node array -> t
(** Arena holding exactly the given nodes ([n_nodes = length]). Raises
    [Invalid_argument] when more nodes than the [2 * n_sinks - 1]
    capacity are supplied. *)
