lib/activity/profile.mli: Cpu_model Ift Imatt Instr_stream Module_set Rtl
