/* Monotonic time for Util.Obs.Clock.

   The OCaml unix library only exposes the gettimeofday wall clock, which
   steps under NTP adjustment and breaks budget/elapsed arithmetic; these
   stubs read CLOCK_MONOTONIC directly (the [Unix.clock_gettime Monotonic]
   the stdlib never grew). The float variant is [@@unboxed] [@@noalloc] so
   a deadline check in a hot loop costs one call, no allocation. */

#include <stdint.h>
#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

static int64_t gcr_obs_ns(void)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value gcr_obs_monotonic_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(gcr_obs_ns());
}

CAMLprim double gcr_obs_monotonic_s(value unit)
{
  (void)unit;
  return (double)gcr_obs_ns() * 1e-9;
}

CAMLprim value gcr_obs_monotonic_s_byte(value unit)
{
  return caml_copy_double(gcr_obs_monotonic_s(unit));
}
