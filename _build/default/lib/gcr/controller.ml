type t =
  | Centralized of Geometry.Point.t
  | Distributed of { die : Geometry.Bbox.t; grid : int }

let centralized die = Centralized (Geometry.Bbox.center die)

let at p = Centralized p

let distributed die ~k =
  if k <= 0 then invalid_arg "Controller.distributed: k must be positive";
  let grid = int_of_float (Float.round (sqrt (float_of_int k))) in
  if grid * grid <> k then
    invalid_arg "Controller.distributed: k must be a perfect square";
  if grid = 1 then centralized die else Distributed { die; grid }

let n_controllers = function
  | Centralized _ -> 1
  | Distributed { grid; _ } -> grid * grid

let sites = function
  | Centralized p -> [ p ]
  | Distributed { die; grid } ->
    Array.to_list
      (Array.map Geometry.Bbox.center (Geometry.Bbox.split_grid die grid))

let site_for t p =
  match t with
  | Centralized site -> site
  | Distributed { die; grid } ->
    let idx = Geometry.Bbox.cell_index die grid p in
    Geometry.Bbox.center (Geometry.Bbox.split_grid die grid).(idx)

let wire_length t p = Geometry.Point.manhattan p (site_for t p)

let pp ppf = function
  | Centralized p -> Format.fprintf ppf "centralized @@ %a" Geometry.Point.pp p
  | Distributed { grid; _ } ->
    Format.fprintf ppf "distributed %dx%d (%d controllers)" grid grid (grid * grid)
