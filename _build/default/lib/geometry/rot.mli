(** The 45-degree rotated coordinate frame used by all DME geometry.

    With [u = x + y] and [v = x - y], the Manhattan distance between two
    chip-space points equals the Chebyshev (L-infinity) distance between
    their images, so Manhattan discs become axis-aligned squares and
    merging segments (slope +-1 "Manhattan arcs") become axis-aligned
    segments. All tilted-rectangular-region arithmetic in {!Rect} operates
    on this frame. *)

type t = { u : float; v : float }

val of_point : Point.t -> t

val to_point : t -> Point.t
(** Inverse of {!of_point}: [x = (u + v) / 2], [y = (u - v) / 2]. *)

val chebyshev : t -> t -> float
(** L-infinity distance in the rotated frame = Manhattan distance of the
    corresponding chip-space points. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
