(* The routing service: wire framing under hostile byte streams, protocol
   codecs, tree digests, the bounded pool, the workload cache, and the
   daemon itself over real loopback sockets — smoke, poison isolation,
   backpressure, budget degradation, and the fault campaign. *)

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Frame                                                              *)
(* ------------------------------------------------------------------ *)

(* Feed a byte string to a decoder in chunks chosen by the prng and
   collect every event until the decoder wants more input. *)
let drain_decoder dec =
  let rec go acc =
    match Serve.Frame.next dec with
    | Ok (Some e) -> go (e :: acc)
    | Ok None -> List.rev acc
    | Error (`Oversized _) -> List.rev acc
  in
  go []

let feed_chunked prng dec s =
  let n = String.length s in
  let pos = ref 0 in
  let events = ref [] in
  while !pos < n do
    let k = 1 + Util.Prng.int prng (min 911 (n - !pos)) in
    Serve.Frame.feed dec ~off:!pos ~len:k s;
    events := !events @ drain_decoder dec;
    pos := !pos + k
  done;
  !events

let payload_gen =
  QCheck.Gen.(
    list_size (int_bound 6)
    (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 2000)))

let prop_frame_roundtrip_chunked =
  QCheck.Test.make ~count:100
    ~name:"frames survive arbitrary chunking"
    QCheck.(pair (make payload_gen) (int_range 1 100_000))
    (fun (payloads, seed) ->
      let prng = Util.Prng.create seed in
      let stream = String.concat "" (List.map Serve.Frame.encode payloads) in
      let dec = Serve.Frame.decoder () in
      let events = feed_chunked prng dec stream in
      let got =
        List.filter_map
          (function Serve.Frame.Frame p -> Some p | Serve.Frame.Junk _ -> None)
          events
      in
      got = payloads
      && not (List.exists (function Serve.Frame.Junk _ -> true | _ -> false) events))

(* junk that can never begin a frame header: no 'G' anywhere *)
let junk_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'x'; '{'; '"'; ' '; '\n'; '7'; 'g'; 'R' ])
      (int_range 1 200))

let prop_frame_junk_recovery =
  QCheck.Test.make ~count:100
    ~name:"junk before a frame is skipped, counted, and survived"
    QCheck.(pair (make junk_gen) (int_range 1 100_000))
    (fun (junk, seed) ->
      let prng = Util.Prng.create seed in
      let payload = "{\"hello\":1}" in
      let stream = junk ^ Serve.Frame.encode payload in
      let dec = Serve.Frame.decoder () in
      let events = feed_chunked prng dec stream in
      let skipped =
        List.fold_left
          (fun acc -> function
            | Serve.Frame.Junk { skipped; _ } -> acc + skipped
            | Serve.Frame.Frame _ -> acc)
          0 events
      in
      skipped = String.length junk
      && List.exists (function Serve.Frame.Frame p -> p = payload | _ -> false)
           events)

let test_frame_max_size_boundary () =
  let max_frame = 4096 in
  (* exactly at the limit: round-trips *)
  let at = String.make max_frame 'a' in
  let dec = Serve.Frame.decoder ~max_frame () in
  Serve.Frame.feed dec (Serve.Frame.encode ~max_frame at);
  (match Serve.Frame.next dec with
  | Ok (Some (Serve.Frame.Frame p)) ->
    Alcotest.(check int) "limit-sized payload intact" max_frame
      (String.length p);
    Alcotest.(check bool) "bytes intact" true (p = at)
  | _ -> Alcotest.fail "limit-sized frame rejected");
  (* one past: the encoder refuses *)
  Alcotest.check_raises "encode past the limit"
    (Invalid_argument "Frame.encode: 4097-byte payload exceeds the 4096-byte limit")
    (fun () -> ignore (Serve.Frame.encode ~max_frame (String.make (max_frame + 1) 'a')));
  (* a crafted header claiming one past: sticky Oversized *)
  let b = Buffer.create 16 in
  Buffer.add_string b Serve.Frame.magic;
  Buffer.add_int32_be b (Int32.of_int (max_frame + 1));
  let dec = Serve.Frame.decoder ~max_frame () in
  Serve.Frame.feed dec (Buffer.contents b);
  (match Serve.Frame.next dec with
  | Error (`Oversized n) -> Alcotest.(check int) "claimed size" (max_frame + 1) n
  | _ -> Alcotest.fail "oversized header accepted");
  (* sticky: feeding a perfectly good frame afterwards changes nothing *)
  Serve.Frame.feed dec (Serve.Frame.encode ~max_frame "ok");
  match Serve.Frame.next dec with
  | Error (`Oversized _) -> ()
  | _ -> Alcotest.fail "oversized error was not sticky"

let test_frame_truncated () =
  let frame = Serve.Frame.encode "a payload long enough to cut" in
  let dec = Serve.Frame.decoder () in
  Serve.Frame.feed dec ~len:(String.length frame - 5) frame;
  (match Serve.Frame.next dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "truncated frame yielded an event");
  Alcotest.(check bool) "mid-frame bytes counted" true
    (Serve.Frame.awaiting dec > 0);
  (* the tail completes it *)
  Serve.Frame.feed dec ~off:(String.length frame - 5) frame;
  match Serve.Frame.next dec with
  | Ok (Some (Serve.Frame.Frame p)) ->
    Alcotest.(check string) "completed" "a payload long enough to cut" p
  | _ -> Alcotest.fail "completed frame not decoded"

(* ------------------------------------------------------------------ *)
(* Proto                                                              *)
(* ------------------------------------------------------------------ *)

let scenario_of_seed seed =
  Conformance.Scenario.generate
    (Util.Prng.create seed)
    ~tag:(Printf.sprintf "serve-test #%d" seed)

let test_proto_request_roundtrip () =
  List.iter
    (fun req ->
      match Serve.Proto.request_of_json (Serve.Proto.request_to_json req) with
      | Ok r -> Alcotest.(check bool) "request round-trips" true (r = req)
      | Error (msg, off) ->
        Alcotest.failf "round-trip failed: %s at %d" msg off)
    [
      { Serve.Proto.id = 0; scenario = Conformance.Scenario.render (scenario_of_seed 1);
        budget_ms = None; paranoid = false;
        kind = Serve.Proto.Route };
      { Serve.Proto.id = 42; scenario = "not even\na scenario\x01";
        budget_ms = Some 12.5; paranoid = true;
        kind = Serve.Proto.Update { chunk = [| 0; 1; 0 |] } };
    ]

let test_proto_response_roundtrip () =
  List.iter
    (fun resp ->
      match Serve.Proto.response_of_json (Serve.Proto.response_to_json resp) with
      | Ok r -> Alcotest.(check bool) "response round-trips" true (r = resp)
      | Error (msg, off) ->
        Alcotest.failf "round-trip failed: %s at %d" msg off)
    [
      Serve.Proto.Answer
        { id = 7; rung = "route"; degraded = [ "reduce"; "size" ];
          digest = "00ff00ff00ff00ff"; w_total = 1234.5; gates = 7; buffers = 2;
          wirelen = 314.25; audit_hits = 10; audit_misses = 3;
          cache_warm = true; epoch = 2; elapsed_ms = 1.75 };
      Serve.Proto.Reject
        { id = Some 9; error_class = "parse"; exit_code = 65;
          message = "scenario:3:1: bad"; retry_after_ms = None };
      Serve.Proto.Reject
        { id = None; error_class = "resource-limit"; exit_code = 75;
          message = "queue full"; retry_after_ms = Some 40.0 };
    ]

let test_proto_malformed () =
  (match Serve.Proto.request_of_json "{\"version\":1,\"id\":oops}" with
  | Ok _ -> Alcotest.fail "malformed JSON accepted"
  | Error (_, off) -> Alcotest.(check bool) "located past zero" true (off > 0));
  match Serve.Proto.request_of_json "{\"version\":1}" with
  | Ok _ -> Alcotest.fail "shapeless request accepted"
  | Error (_, off) -> Alcotest.(check int) "shape errors at offset 0" 0 off

(* ------------------------------------------------------------------ *)
(* Digest                                                             *)
(* ------------------------------------------------------------------ *)

let route_scenario scn =
  Gcr.Flow.run
    ~options:scn.Conformance.Scenario.options
    (Conformance.Scenario.config scn)
    (Conformance.Scenario.profile scn)
    scn.Conformance.Scenario.sinks

let test_digest_deterministic () =
  let scn = scenario_of_seed 5 in
  let a = Serve.Digest.tree (route_scenario scn) in
  let b = Serve.Digest.tree (route_scenario scn) in
  Alcotest.(check bool) "same route, same digest" true (Int64.equal a b);
  let other = Serve.Digest.tree (route_scenario (scenario_of_seed 6)) in
  Alcotest.(check bool) "different tree, different digest" false
    (Int64.equal a other)

(* Regression for the domain-local gather-scratch race: whole routes on
   sibling systhreads of one domain (exactly what the campaign's local
   ground-truth checks do while the daemon shares the process) used to
   clobber each other's candidate buffers in Greedy/Activity_router,
   crashing with "not an active root" or silently routing a different
   tree. Eight threads re-route the same scenarios concurrently; every
   digest must equal the sequential one and nothing may raise. *)
let test_concurrent_routes_identical () =
  (* Scenarios big enough that a route spans several systhread ticks:
     with sub-tick routes the threads never interleave and the old
     shared-scratch code passes by luck. *)
  let big seed =
    let base = scenario_of_seed seed in
    let n = 600 in
    let prng = Util.Prng.create (seed * 7 + 1) in
    let n_modules = Activity.Rtl.n_modules base.Conformance.Scenario.rtl in
    let die = 200.0 in
    let sinks =
      Array.init n (fun id ->
          Clocktree.Sink.make ~id
            ~loc:
              (Geometry.Point.make
                 (0.25
                 *. float_of_int (Util.Prng.int prng (int_of_float (die /. 0.25))))
                 (0.25
                 *. float_of_int (Util.Prng.int prng (int_of_float (die /. 0.25)))))
            ~cap:1.0
            ~module_id:(id mod n_modules))
    in
    { base with
      Conformance.Scenario.tag = Printf.sprintf "serve-test race #%d" seed;
      die_side = die;
      sinks;
      options = Gcr.Flow.default;
      test_en = false }
  in
  let scenarios = Array.init 3 (fun i -> big (500 + i)) in
  let expected =
    Array.map (fun s -> Serve.Digest.tree (route_scenario s)) scenarios
  in
  let failures = Atomic.make [] in
  let push e =
    let rec go () =
      let old = Atomic.get failures in
      if not (Atomic.compare_and_set failures old (e :: old)) then go ()
    in
    go ()
  in
  let worker t =
    Array.iteri
      (fun i scn ->
        match Serve.Digest.tree (route_scenario scn) with
        | d ->
          if not (Int64.equal d expected.(i)) then
            push
              (Printf.sprintf "thread %d scn %d: digest %Lx <> %Lx" t i d
                 expected.(i))
        | exception e ->
          push
            (Printf.sprintf "thread %d scn %d: %s" t i (Printexc.to_string e)))
      scenarios
  in
  let threads = Array.init 8 (fun t -> Thread.create worker t) in
  Array.iter Thread.join threads;
  match Atomic.get failures with
  | [] -> ()
  | fs ->
    Alcotest.failf "%d concurrent-route failures: %s" (List.length fs)
      (String.concat "; " fs)

let test_digest_hex_roundtrip () =
  List.iter
    (fun v ->
      let hex = Serve.Digest.to_hex v in
      Alcotest.(check int) "16 digits" 16 (String.length hex);
      Alcotest.(check (option int64)) "of_hex inverts" (Some v)
        (Serve.Digest.of_hex hex))
    [ 0L; 1L; -1L; 0xdeadbeefL; Int64.min_int; 0x0123456789abcdefL ];
  Alcotest.(check (option int64)) "junk rejected" None
    (Serve.Digest.of_hex "00ff00ff00ff00fg");
  Alcotest.(check (option int64)) "underscores rejected" None
    (Serve.Digest.of_hex "0_ff00ff00ff00ff");
  Alcotest.(check (option int64)) "short rejected" None
    (Serve.Digest.of_hex "00ff")

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let spin_until ?(timeout_s = 10.0) pred =
  let deadline = Util.Obs.Clock.now () +. timeout_s in
  while (not (pred ())) && Util.Obs.Clock.now () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check bool) "condition reached before timeout" true (pred ())

let test_pool_backpressure () =
  let pool = Serve.Pool.create ~workers:1 ~queue_cap:2 () in
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let ran = Atomic.make 0 in
  let blocker ~slot =
    Alcotest.(check int) "single worker is slot 0" 0 slot;
    Atomic.set started true;
    while not (Atomic.get gate) do Thread.yield () done;
    Atomic.incr ran
  in
  (match Serve.Pool.submit pool blocker with
  | `Accepted -> ()
  | _ -> Alcotest.fail "empty pool rejected a job");
  (* wait until the worker holds the blocker so the queue is truly empty *)
  spin_until (fun () -> Atomic.get started);
  let fill ~slot:_ = Atomic.incr ran in
  (match (Serve.Pool.submit pool fill, Serve.Pool.submit pool fill) with
  | `Accepted, `Accepted -> ()
  | _ -> Alcotest.fail "queue refused jobs under its cap");
  (match Serve.Pool.submit pool fill with
  | `Full depth -> Alcotest.(check int) "reported depth" 2 depth
  | _ -> Alcotest.fail "full queue accepted a job");
  Atomic.set gate true;
  Serve.Pool.drain pool;
  Alcotest.(check int) "accepted jobs all ran" 3 (Atomic.get ran);
  (match Serve.Pool.submit pool fill with
  | `Draining -> ()
  | _ -> Alcotest.fail "drained pool accepted a job");
  Alcotest.(check int) "no backstop errors" 0 (Serve.Pool.backstop_errors pool)

let test_pool_backstop_counts_raises () =
  let pool = Serve.Pool.create ~workers:2 ~queue_cap:8 () in
  (match Serve.Pool.submit pool (fun ~slot:_ -> failwith "escaped") with
  | `Accepted -> ()
  | _ -> Alcotest.fail "job rejected");
  spin_until (fun () -> Serve.Pool.backstop_errors pool = 1);
  (* the worker survived: it still runs jobs *)
  let ok = Atomic.make false in
  (match Serve.Pool.submit pool (fun ~slot:_ -> Atomic.set ok true) with
  | `Accepted -> ()
  | _ -> Alcotest.fail "job rejected after a backstop error");
  Serve.Pool.drain pool;
  Alcotest.(check bool) "worker survived the raise" true (Atomic.get ok)

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let test_cache_warm_and_audit () =
  let cache = Serve.Cache.create ~slots:1 () in
  let scn = scenario_of_seed 11 in
  let key1, prof1, epoch1, warm1 = Serve.Cache.profile cache scn in
  Alcotest.(check bool) "first sight is cold" false warm1;
  Alcotest.(check int) "base epoch" 0 epoch1;
  let key2, prof2, _, warm2 = Serve.Cache.profile cache scn in
  Alcotest.(check bool) "second sight is warm" true warm2;
  Alcotest.(check bool) "same key" true (Int64.equal key1 key2);
  Alcotest.(check bool) "same shared profile" true (prof1 == prof2);
  Alcotest.(check int) "one workload resident" 1 (Serve.Cache.resident cache);
  (* the audit over a tree routed with the shared profile passes and its
     second pass answers from cache *)
  let tree =
    Gcr.Flow.run ~options:scn.Conformance.Scenario.options
      (Conformance.Scenario.config scn) prof1 scn.Conformance.Scenario.sinks
  in
  let pc =
    match Serve.Cache.pcache cache ~key:key1 ~slot:0 ~epoch:epoch1 with
    | `Pcache pc -> pc
    | `Stale _ -> Alcotest.fail "lane stale without any update"
  in
  let hits1, misses1 = Serve.Cache.audit pc tree in
  Alcotest.(check bool) "audit touched the cache" true (hits1 + misses1 > 0);
  let hits2, misses2 = Serve.Cache.audit pc tree in
  Alcotest.(check int) "warm audit is all hits" 0 misses2;
  Alcotest.(check int) "same queries" (hits1 + misses1) hits2;
  Alcotest.check_raises "unknown workload key"
    (Invalid_argument "Cache.pcache: workload 0000000000000bad not resident")
    (fun () ->
      ignore (Serve.Cache.pcache cache ~key:0xbadL ~slot:0 ~epoch:0))

(* An update atomically swaps the shared profile, advances the epoch and
   invalidates every pcache lane: a route that picked up its tables
   before the update must see [`Stale] (the cross-epoch audit tripwire),
   and a fresh lookup must route and audit cleanly against the drifted
   profile. *)
let test_cache_update_epoch () =
  let cache = Serve.Cache.create ~slots:1 () in
  let scn = scenario_of_seed 12 in
  let key, prof0, epoch0, _ = Serve.Cache.profile cache scn in
  Alcotest.(check int) "base epoch" 0 epoch0;
  (match Serve.Cache.pcache cache ~key ~slot:0 ~epoch:epoch0 with
  | `Pcache _ -> ()
  | `Stale _ -> Alcotest.fail "base lane stale");
  (* Drift the workload: replay the scenario's own trace reversed. *)
  let stream = Conformance.Scenario.instr_stream scn in
  let n = Activity.Instr_stream.length stream in
  let chunk = Array.init n (fun i -> Activity.Instr_stream.get stream (n - 1 - i)) in
  let epoch1, prof1 = Serve.Cache.update cache scn ~chunk in
  Alcotest.(check int) "epoch advanced" (epoch0 + 1) epoch1;
  Alcotest.(check bool) "profile replaced" true (not (prof0 == prof1));
  Alcotest.(check (option int)) "epoch visible" (Some epoch1)
    (Serve.Cache.epoch cache scn);
  (* The old epoch's lane is gone: a route that started before the
     update must not audit against the drifted tables. *)
  (match Serve.Cache.pcache cache ~key ~slot:0 ~epoch:epoch0 with
  | `Stale current -> Alcotest.(check int) "stale reports current" epoch1 current
  | `Pcache _ -> Alcotest.fail "stale epoch served a lane");
  let key', prof', epoch', warm' = Serve.Cache.profile cache scn in
  Alcotest.(check bool) "same workload key" true (Int64.equal key key');
  Alcotest.(check bool) "lookup sees drifted profile" true (prof' == prof1);
  Alcotest.(check int) "lookup sees new epoch" epoch1 epoch';
  Alcotest.(check bool) "still warm" true warm';
  let tree =
    Gcr.Flow.run ~options:scn.Conformance.Scenario.options
      (Conformance.Scenario.config scn) prof' scn.Conformance.Scenario.sinks
  in
  let pc =
    match Serve.Cache.pcache cache ~key ~slot:0 ~epoch:epoch' with
    | `Pcache pc -> pc
    | `Stale _ -> Alcotest.fail "fresh lane stale"
  in
  let hits, misses = Serve.Cache.audit pc tree in
  Alcotest.(check bool) "audit over drifted profile" true (hits + misses > 0);
  (* A second update on top of the first keeps accumulating. *)
  let epoch2, _ = Serve.Cache.update cache scn ~chunk:[| 0 |] in
  Alcotest.(check int) "second update" (epoch1 + 1) epoch2

(* ------------------------------------------------------------------ *)
(* The daemon over a real socket                                      *)
(* ------------------------------------------------------------------ *)

let with_server ?(workers = 2) ?(queue_cap = 64) ?default_budget_ms f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcr-test-%d-%d.sock" (Unix.getpid ()) (Thread.id (Thread.self ())))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    {
      (Serve.Server.default_config (Serve.Server.Unix_socket path)) with
      Serve.Server.workers;
      queue_cap;
      default_budget_ms;
      read_timeout_s = 2.0;
    }
  in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let stats = ref None in
  let th =
    Thread.create
      (fun () ->
        stats :=
          Some
            (Serve.Server.run
               ~stop:(fun () -> Atomic.get stop)
               ~on_ready:(fun _ -> Atomic.set ready true)
               cfg))
      ()
  in
  spin_until (fun () -> Atomic.get ready);
  let addr = Serve.Server.Unix_socket path in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Thread.join th)
      (fun () -> f addr)
  in
  match !stats with
  | None -> Alcotest.fail "server returned no stats"
  | Some s -> (result, s)

(* The CI smoke contract, in-process: 50 pipelined requests of which 2
   are poison — 48 answered bit-identically to one-shot routing, 2
   rejected with a typed parse error, nothing silent, clean drain. *)
let test_server_smoke_50 () =
  let scenarios = Array.init 48 (fun i -> scenario_of_seed (100 + i)) in
  let poison_at = [ 13; 37 ] in
  let (answers, rejects), stats =
    with_server (fun addr ->
        let c = Serve.Client.connect addr in
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        let next_scn = ref 0 in
        for id = 0 to 49 do
          if List.mem id poison_at then
            Serve.Client.send c
              { Serve.Proto.id; scenario = "die-side 1.0\nnot a scenario [";
                budget_ms = None; paranoid = false;
        kind = Serve.Proto.Route }
          else begin
            Serve.Client.send c
              { Serve.Proto.id;
                scenario = Conformance.Scenario.render scenarios.(!next_scn);
                budget_ms = None; paranoid = false;
        kind = Serve.Proto.Route };
            incr next_scn
          end
        done;
        Serve.Client.close_half c;
        let answers = ref [] and rejects = ref [] in
        let rec drain () =
          match Serve.Client.recv ~timeout_s:120.0 c with
          | Ok (Some (Serve.Proto.Answer a)) ->
            answers := a :: !answers;
            drain ()
          | Ok (Some (Serve.Proto.Reject r)) ->
            rejects := r :: !rejects;
            drain ()
          | Ok None -> ()
          | Error e -> Alcotest.failf "transport error: %s" e
        in
        drain ();
        (!answers, !rejects))
  in
  Alcotest.(check int) "48 answered" 48 (List.length answers);
  Alcotest.(check int) "2 rejected" 2 (List.length rejects);
  List.iter
    (fun r ->
      Alcotest.(check bool) "poison ids attributed" true
        (match r.Serve.Proto.id with
        | Some id -> List.mem id poison_at
        | None -> false);
      Alcotest.(check string) "typed as parse" "parse" r.Serve.Proto.error_class;
      Alcotest.(check int) "sysexit 65" 65 r.Serve.Proto.exit_code;
      Alcotest.(check bool) "caret-located message" true
        (Astring.String.is_infix ~affix:":" r.Serve.Proto.message))
    rejects;
  (* every answer is bit-identical to a local one-shot of the same id *)
  let scenario_of_id =
    let tbl = Hashtbl.create 48 in
    let next = ref 0 in
    for id = 0 to 49 do
      if not (List.mem id poison_at) then begin
        Hashtbl.add tbl id scenarios.(!next);
        incr next
      end
    done;
    Hashtbl.find tbl
  in
  List.iter
    (fun (a : Serve.Proto.answer) ->
      let local =
        Serve.Digest.to_hex
          (Serve.Digest.tree (route_scenario (scenario_of_id a.Serve.Proto.id)))
      in
      Alcotest.(check string)
        (Printf.sprintf "answer %d bit-identical" a.Serve.Proto.id)
        local a.Serve.Proto.digest)
    answers;
  Alcotest.(check bool) "drained clean" true stats.Serve.Server.drained_clean;
  Alcotest.(check int) "no backstop errors" 0 stats.Serve.Server.backstop_errors;
  Alcotest.(check int) "server counted the answers" 48
    stats.Serve.Server.answered

(* Overload: one worker, a 2-deep queue, and a burst of requests
   submitted faster than any route completes — some must be rejected
   immediately with resource-limit + a retry-after hint, and every
   request must still get exactly one response. *)
let test_server_backpressure () =
  let scn = scenario_of_seed 200 in
  let burst = 20 in
  let (answered, backpressured), stats =
    with_server ~workers:1 ~queue_cap:2 (fun addr ->
        let c = Serve.Client.connect addr in
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        let text = Conformance.Scenario.render scn in
        for id = 0 to burst - 1 do
          Serve.Client.send c
            { Serve.Proto.id; scenario = text; budget_ms = None; paranoid = false;
        kind = Serve.Proto.Route }
        done;
        Serve.Client.close_half c;
        let answered = ref 0 and backpressured = ref 0 in
        let rec drain () =
          match Serve.Client.recv ~timeout_s:120.0 c with
          | Ok (Some (Serve.Proto.Answer _)) ->
            incr answered;
            drain ()
          | Ok (Some (Serve.Proto.Reject r)) ->
            Alcotest.(check string) "rejects are resource-limit"
              "resource-limit" r.Serve.Proto.error_class;
            Alcotest.(check bool) "retry-after hint present" true
              (r.Serve.Proto.retry_after_ms <> None);
            incr backpressured;
            drain ()
          | Ok None -> ()
          | Error e -> Alcotest.failf "transport error: %s" e
        in
        drain ();
        (!answered, !backpressured))
  in
  Alcotest.(check int) "one response per request" burst
    (answered + backpressured);
  Alcotest.(check bool) "overload visibly rejected" true (backpressured > 0);
  Alcotest.(check bool) "admitted requests answered" true (answered >= 3);
  Alcotest.(check int) "server agrees" backpressured
    stats.Serve.Server.rejected_backpressure

(* A large request under a ~1 ms budget: the first rung completes past
   its deadline (a finished tree beats a timeout) and the optional
   stages are skipped — degraded-but-answered, with the provenance
   tagged in the response. *)
let test_server_budget_degrades () =
  let base = scenario_of_seed 300 in
  let n = 3000 in
  let prng = Util.Prng.create 301 in
  let n_modules = Activity.Rtl.n_modules base.Conformance.Scenario.rtl in
  let die = 400.0 in
  let sinks =
    Array.init n (fun id ->
        Clocktree.Sink.make ~id
          ~loc:
            (Geometry.Point.make
               (0.25 *. float_of_int (Util.Prng.int prng (int_of_float (die /. 0.25))))
               (0.25 *. float_of_int (Util.Prng.int prng (int_of_float (die /. 0.25)))))
          ~cap:1.0
          ~module_id:(id mod n_modules))
  in
  let scn =
    { base with
      Conformance.Scenario.tag = "serve-test budget";
      die_side = die;
      sinks;
      options = Gcr.Flow.default;
      test_en = false }
  in
  let resp, stats =
    with_server (fun addr ->
        let c = Serve.Client.connect addr in
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        Serve.Client.send c
          { Serve.Proto.id = 0; scenario = Conformance.Scenario.render scn;
            budget_ms = Some 1.0; paranoid = false;
            kind = Serve.Proto.Route };
        match Serve.Client.recv ~timeout_s:300.0 c with
        | Ok (Some r) -> r
        | Ok None -> Alcotest.fail "no response"
        | Error e -> Alcotest.failf "transport error: %s" e)
  in
  (match resp with
  | Serve.Proto.Answer a ->
    Alcotest.(check string) "first rung still wins" "route" a.Serve.Proto.rung;
    Alcotest.(check bool) "optional stages reported skipped" true
      (a.Serve.Proto.degraded <> [])
  | Serve.Proto.Reject r ->
    Alcotest.failf "expected a degraded answer, got reject %s: %s"
      r.Serve.Proto.error_class r.Serve.Proto.message);
  Alcotest.(check bool) "drained clean" true stats.Serve.Server.drained_clean

let test_server_zero_budget_rejects () =
  let scn = scenario_of_seed 400 in
  let resp, _stats =
    with_server (fun addr ->
        let c = Serve.Client.connect addr in
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        Serve.Client.send c
          { Serve.Proto.id = 0; scenario = Conformance.Scenario.render scn;
            budget_ms = Some 0.0; paranoid = false;
            kind = Serve.Proto.Route };
        match Serve.Client.recv ~timeout_s:60.0 c with
        | Ok (Some r) -> r
        | Ok None -> Alcotest.fail "no response"
        | Error e -> Alcotest.failf "transport error: %s" e)
  in
  match resp with
  | Serve.Proto.Reject r ->
    Alcotest.(check string) "resource-limit" "resource-limit"
      r.Serve.Proto.error_class;
    Alcotest.(check int) "sysexit 75" 75 r.Serve.Proto.exit_code
  | Serve.Proto.Answer _ ->
    Alcotest.fail "zero budget answered instead of rejecting"

(* ------------------------------------------------------------------ *)
(* Campaign (the gcr fuzz --serve engine), smoke-sized                 *)
(* ------------------------------------------------------------------ *)

let test_campaign_smoke () =
  let stats = Serve.Campaign.run ~count:35 ~seed:7 ~clients:3 () in
  if not (Serve.Campaign.passed stats) then
    Alcotest.failf "campaign failed:@.%a" Serve.Campaign.pp_stats stats;
  Alcotest.(check int) "every case judged" 35
    (stats.Serve.Campaign.diagnosed + stats.Serve.Campaign.absorbed
    + stats.Serve.Campaign.identical);
  Alcotest.(check int) "all seven families exercised" 7
    (List.length stats.Serve.Campaign.coverage)

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          qt prop_frame_roundtrip_chunked;
          qt prop_frame_junk_recovery;
          Alcotest.test_case "max-size boundary" `Quick
            test_frame_max_size_boundary;
          Alcotest.test_case "truncated then completed" `Quick
            test_frame_truncated;
        ] );
      ( "proto",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_proto_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_proto_response_roundtrip;
          Alcotest.test_case "malformed located" `Quick test_proto_malformed;
        ] );
      ( "digest",
        [
          Alcotest.test_case "deterministic" `Quick test_digest_deterministic;
          Alcotest.test_case "hex round-trip" `Quick test_digest_hex_roundtrip;
          Alcotest.test_case "concurrent routes race-free" `Slow
            test_concurrent_routes_identical;
        ] );
      ( "pool",
        [
          Alcotest.test_case "bounded admission" `Quick test_pool_backpressure;
          Alcotest.test_case "backstop counts raises" `Quick
            test_pool_backstop_counts_raises;
        ] );
      ( "cache",
        [ Alcotest.test_case "warm flag and audit" `Quick test_cache_warm_and_audit;
          Alcotest.test_case "update advances epoch" `Quick
            test_cache_update_epoch ] );
      ( "daemon",
        [
          Alcotest.test_case "smoke: 48 ok + 2 poison" `Slow
            test_server_smoke_50;
          Alcotest.test_case "backpressure under overload" `Slow
            test_server_backpressure;
          Alcotest.test_case "budget degrades, still answers" `Slow
            test_server_budget_degrades;
          Alcotest.test_case "zero budget rejects" `Quick
            test_server_zero_budget_rejects;
        ] );
      ( "campaign",
        [ Alcotest.test_case "35-fault smoke" `Slow test_campaign_smoke ] );
    ]
