(** Nearest-neighbor zero-skew topology (the Edahiro-style heuristic the
    paper uses for its buffered baseline and cites as [3]).

    Greedily merges the two subtree roots whose merging sectors are
    geometrically closest; with [edge_gate = Some tech.buffer] this yields
    the paper's "buffered clock tree" construction. *)

val topology : Tech.t -> edge_gate:Tech.gate option -> Sink.t array -> Topo.t
(** Build the complete topology. Raises [Invalid_argument] on an empty or
    mis-indexed sink array. *)

val embed :
  Tech.t ->
  edge_gate:Tech.gate option ->
  root_anchor:Geometry.Point.t ->
  Sink.t array ->
  Embed.t
(** Topology plus DME embedding with the same uniform gate assignment. *)
