type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = bits64 g }

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 g) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let float g x =
  (* 53 high-quality bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let bool g = Int64.logand (bits64 g) 1L = 1L

let range g lo hi = lo +. float g (hi -. lo)

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let choose_weighted g w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Prng.choose_weighted: empty weights";
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Prng.choose_weighted: non-positive total";
  let target = float g total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
