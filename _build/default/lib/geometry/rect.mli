(** Axis-aligned rectangles in the rotated frame: the uniform representation
    of DME geometry.

    In the rotated frame of {!Rot}, a tilted rectangular region (TRR), a
    Manhattan arc (a merging segment of slope +-1), and a single point are
    all axis-aligned rectangles — possibly degenerate in one or both
    dimensions. TRR construction is interval inflation, TRR intersection is
    interval intersection, and the Manhattan distance between regions is the
    Chebyshev distance between rectangles. *)

type t = private { ulo : float; uhi : float; vlo : float; vhi : float }
(** Invariant: [ulo <= uhi] and [vlo <= vhi]. *)

val make : ulo:float -> uhi:float -> vlo:float -> vhi:float -> t
(** Raises [Invalid_argument] if an interval is reversed or a bound is not
    finite. *)

val of_rot : Rot.t -> t
(** Degenerate rectangle holding a single rotated-frame point. *)

val of_point : Point.t -> t
(** Degenerate rectangle holding a single chip-space point. *)

val inflate : t -> float -> t
(** [inflate r d] is the tilted rectangular region of radius [d >= 0] around
    [r]: all rotated-frame points within Chebyshev distance [d], i.e. all
    chip-space points within Manhattan distance [d]. Raises
    [Invalid_argument] on a negative radius. *)

val intersect : t -> t -> t option
(** Set intersection; [None] when the rectangles are disjoint. *)

val distance : t -> t -> float
(** Chebyshev distance between the two sets (0 when they intersect) =
    minimum Manhattan distance between the chip-space regions. *)

val distance_to_rot : t -> Rot.t -> float

val distance_to_point : t -> Point.t -> float
(** Minimum Manhattan distance from a chip-space point to the region. *)

val nearest_to : t -> Rot.t -> Rot.t
(** Closest point of the rectangle to the given rotated-frame point
    (componentwise clamp; unique for axis-aligned rectangles under L-inf
    up to the standard clamp convention). *)

val nearest_to_point : t -> Point.t -> Point.t
(** {!nearest_to} in chip space. *)

val nearest_pair : t -> t -> Rot.t * Rot.t
(** [(p, q)] with [p] in the first rectangle and [q] in the second realizing
    {!distance}. *)

val center : t -> Rot.t

val center_point : t -> Point.t
(** Chip-space image of the rectangle center: the "middle point of the
    merging sector" used by the paper's controller-distance estimate. *)

val contains : ?eps:float -> t -> Rot.t -> bool

val contains_rect : ?eps:float -> t -> t -> bool
(** [contains_rect outer inner] — is [inner] a subset of [outer] (within
    [eps])? *)

val is_point : ?eps:float -> t -> bool

val is_segment : ?eps:float -> t -> bool
(** Degenerate in exactly one dimension: a genuine Manhattan arc. *)

val width_u : t -> float

val width_v : t -> float

val corner_points : t -> Point.t list
(** The up-to-four distinct corners mapped back to chip space (a tilted
    rectangle, segment, or point), in drawing order. *)

val sample : Util.Prng.t -> t -> Rot.t
(** Uniform random point of the rectangle, for property tests. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
