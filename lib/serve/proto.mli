(** The routing service's request/response messages and their JSON
    codecs.

    One frame payload ({!Frame}) is one single-line JSON document in the
    same hand-rolled stable dialect as {!Util.Obs.to_json} (floats as
    [%.17g], ASCII strings, fixed field order), parsed back with
    {!Util.Obs.Json.parse_located} so a malformed document is rejected
    with the failing byte offset — the server turns that offset into a
    caret diagnostic in the reject message.

    A {b request} carries a whole scenario by value, as the rendered
    {!Conformance.Scenario} text (the exact format [gcr route] and the
    fuzz replay files use): the daemon re-parses it with the same parser
    as the one-shot CLI, which is what makes "bit-identical to one-shot"
    a meaningful contract and makes a poison request fail with the same
    caret-located parse error a poison file would.

    A {b response} is either an [Answer] — the routed tree summarized by
    its {!Digest}, cost figures, and degradation provenance (which
    ladder rung produced it, which stages were skipped) — or a [Reject]
    carrying a typed {!Util.Gcr_error} class, its sysexits code, and for
    backpressure rejects a [retry_after_ms] hint. *)

type kind =
  | Route  (** route the scenario as-is (the default; absent in JSON) *)
  | Update of { chunk : int array }
      (** ingest [chunk] (instruction indices over the scenario's RTL)
          into the workload's streaming profile first — advancing its
          {!Cache} epoch and invalidating every worker's pcache lane —
          then route against the drifted profile *)

type request = {
  id : int;  (** client-chosen, echoed in the response *)
  scenario : string;  (** rendered {!Conformance.Scenario} text *)
  budget_ms : float option;
      (** per-request wall budget for {!Gcr.Flow.run_checked_info};
          [None] = the server's default *)
  paranoid : bool;  (** run with {!Gcr.Flow.mode} [Paranoid] *)
  kind : kind;
}

type answer = {
  id : int;
  rung : string;  (** degradation-ladder rung that routed the tree *)
  degraded : string list;
      (** stages downgraded or skipped, in event order; [[]] = clean *)
  digest : string;  (** {!Digest.to_hex} of the resulting tree *)
  w_total : float;  (** switched capacitance per cycle *)
  gates : int;
  buffers : int;
  wirelen : float;
  audit_hits : int;
      (** shared-{!Activity.Pcache} hits during the response audit —
          nonzero exactly when the workload was warm *)
  audit_misses : int;
  cache_warm : bool;  (** the workload profile was already resident *)
  epoch : int;
      (** profile epoch the tree was routed (and audited) against — 0
          until the workload's first [Update]; the warm-audit tripwire
          compares this, not just workload hashes, so an answer can
          never silently mix tables from two epochs *)
  elapsed_ms : float;  (** service time, queue wait excluded *)
}

type reject = {
  id : int option;  (** [None] when the request itself was unparseable *)
  error_class : string;  (** {!error_class} of the typed error *)
  exit_code : int;  (** {!Util.Gcr_error.exit_code} mapping *)
  message : string;
  retry_after_ms : float option;
      (** backpressure hint: expected queue relief time *)
}

type response = Answer of answer | Reject of reject

val error_class : Util.Gcr_error.t -> string
(** Stable class tag: ["parse"], ["degenerate-input"], ["numerical"],
    ["resource-limit"], ["engine-mismatch"], ["internal"]. *)

val reject_of_error :
  ?id:int -> ?retry_after_ms:float -> Util.Gcr_error.t -> response
(** Package a typed error as a [Reject] (class, sysexits code and
    rendered message filled in). *)

val request_to_json : request -> string

val request_of_json : string -> (request, string * int) result
(** [(message, byte offset)] on failure; offset 0 for well-formed JSON
    of the wrong shape. *)

val response_to_json : response -> string

val response_of_json : string -> (response, string * int) result
