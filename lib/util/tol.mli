(** The pipeline's single relative-tolerance helper.

    All checkers (embedding consistency, zero-skew, cost accounting, the
    conformance oracles) route their float comparisons through these, so
    a tolerance is always relative to the magnitudes compared — the
    absolute-tolerance bug class the PR 3 fuzzer surfaced in
    [Embed.check_consistency] cannot recur — and NaN always fails. *)

val close : ?rel:float -> ?scale:float -> float -> float -> bool
(** [close a b] iff [|a − b| ≤ rel·(1 + max(|a|,|b|) + |scale|)].
    [rel] defaults to 1e-9. [scale] adds a caller magnitude the error is
    known to grow with (coordinate size, max delay). False when either
    operand is NaN. *)

val within : ?rel:float -> ?scale:float -> value:float -> bound:float -> unit -> bool
(** One-sided: [value ≤ bound + rel·(1 + |bound| + |scale|)]. False when
    [value] is NaN (an unbounded NaN must never pass a budget check). *)

val rel_error : float -> float -> float
(** [|a − b| / (1 + max(|a|,|b|))] — the quantity the tolerances bound,
    for diagnostics. *)
