type reduction = No_reduction | Greedy | Rules | Fraction of float

type sizing = No_sizing | Tapered | Uniform of float | Proportional

type shards = Flat | Auto_shards | Shards of int

type gate_share = No_share | Share of { min_instances : int; eps : int }

type eco = No_eco | Eco of { threshold : float }

type options = {
  skew_budget : float;
  reduction : reduction;
  sizing : sizing;
  shards : shards;
  gate_share : gate_share;
  eco : eco;
}

let default =
  {
    skew_budget = 0.0;
    reduction = Greedy;
    sizing = No_sizing;
    shards = Flat;
    gate_share = No_share;
    eco = No_eco;
  }

let apply_reduction options tree =
  match options.reduction with
  | No_reduction -> tree
  | Greedy -> Gate_reduction.reduce_greedy tree
  | Rules -> Gate_reduction.reduce_rules tree
  | Fraction fraction -> Gate_reduction.reduce_fraction tree ~fraction

let apply_share options tree =
  match options.gate_share with
  | No_share -> tree
  | Share { min_instances; eps } -> Gate_share.share ~min_instances ~eps tree

let apply_sizing options tree =
  match options.sizing with
  | No_sizing -> tree
  | Tapered -> Sizing.tapered tree
  | Uniform k -> Sizing.uniform tree k
  | Proportional -> Sizing.proportional tree

let budget options =
  if options.skew_budget > 0.0 then Some options.skew_budget else None

let route_with_options options config profile sinks =
  let skew_budget = budget options in
  match options.shards with
  | Flat -> Router.route ?skew_budget config profile sinks
  | Auto_shards -> Shard_router.route ?skew_budget config profile sinks
  | Shards s -> Shard_router.route ?skew_budget ~shards:s config profile sinks

let run ?(options = default) config profile sinks =
  let tree =
    Util.Obs.span ~name:"route" (fun () ->
        route_with_options options config profile sinks)
  in
  let reduced =
    Util.Obs.span ~name:"reduce" (fun () -> apply_reduction options tree)
  in
  let shared =
    Util.Obs.span ~name:"share" (fun () -> apply_share options reduced)
  in
  Util.Obs.span ~name:"size" (fun () -> apply_sizing options shared)

(* ------------------------------------------------------------------ *)
(* Checked pipeline                                                   *)
(* ------------------------------------------------------------------ *)

type mode = Default | Paranoid

type limits = { wall_seconds : float option; max_merge_steps : int option }

let no_limits = { wall_seconds = None; max_merge_steps = None }

type event = {
  stage : string;
  action : string;
  error : Util.Gcr_error.t option;
}

(* Ladder attempts and degradation events, mirrored into the run report
   so a traced run shows how far down the ladder it went. *)
let rungs_counter = Util.Obs.counter "flow.rungs"

let degraded_counter = Util.Obs.counter "flow.degraded"

let pp_event ppf e =
  match e.error with
  | None -> Format.fprintf ppf "[%s] %s" e.stage e.action
  | Some err ->
    Format.fprintf ppf "[%s] %s (after: %a)" e.stage e.action Util.Gcr_error.pp
      err

(* Input validation: every check appends rather than aborting, so a bad
   input is reported with all its problems at once. *)
let validate_inputs config profile sinks options =
  let errs = ref [] in
  let bad what fmt =
    Printf.ksprintf
      (fun detail ->
        errs := Util.Gcr_error.Degenerate_input { what; detail } :: !errs)
      fmt
  in
  let n = Array.length sinks in
  if n = 0 then bad "sinks" "empty sink array: nothing to route"
  else begin
    (try Clocktree.Sink.validate_array sinks
     with Invalid_argument m -> bad "sinks" "%s" m);
    let n_mods = Activity.Profile.n_modules profile in
    Array.iter
      (fun (s : Clocktree.Sink.t) ->
        let finite what v =
          if not (Float.is_finite v) then
            bad "sinks" "sink %d: non-finite %s (%h)" s.Clocktree.Sink.id what v
        in
        finite "x coordinate" s.Clocktree.Sink.loc.Geometry.Point.x;
        finite "y coordinate" s.Clocktree.Sink.loc.Geometry.Point.y;
        finite "load capacitance" s.Clocktree.Sink.cap;
        if Float.is_finite s.Clocktree.Sink.cap && s.Clocktree.Sink.cap <= 0.0
        then
          bad "sinks" "sink %d: non-positive load capacitance %g"
            s.Clocktree.Sink.id s.Clocktree.Sink.cap;
        if s.Clocktree.Sink.module_id < 0 || s.Clocktree.Sink.module_id >= n_mods
        then
          bad "sinks" "sink %d: module id %d outside the profile's universe [0, %d)"
            s.Clocktree.Sink.id s.Clocktree.Sink.module_id n_mods)
      sinks
  end;
  (try Clocktree.Tech.validate config.Config.tech
   with Invalid_argument m -> bad "tech" "%s" m);
  if not (Float.is_finite options.skew_budget && options.skew_budget >= 0.0)
  then bad "options" "skew budget %g must be finite and non-negative"
      options.skew_budget;
  (match options.reduction with
   | Fraction f when not (Float.is_finite f && f >= 0.0 && f <= 1.0) ->
     bad "options" "reduction fraction %g outside [0, 1]" f
   | _ -> ());
  (match options.sizing with
   | Uniform k when not (Float.is_finite k && k > 0.0) ->
     bad "options" "uniform sizing factor %g must be finite and positive" k
   | _ -> ());
  (match options.shards with
   | Shards s when s < 1 -> bad "options" "shard count %d must be positive" s
   | _ -> ());
  (match options.gate_share with
   | Share { min_instances; _ } when min_instances < 0 ->
     bad "options" "gate-share min_instances %d must be non-negative"
       min_instances
   | Share { eps; _ } when eps < 0 ->
     bad "options" "gate-share eps %d must be non-negative" eps
   | _ -> ());
  (match options.eco with
   | Eco { threshold } when not (Float.is_finite threshold && threshold > 0.0)
     ->
     bad "options" "eco drift threshold %g must be finite and positive"
       threshold
   | _ -> ());
  List.rev !errs

(* Skew slack for the last-rung retry when the exact zero-skew embedding
   fails verification: 1e-3 of the Elmore scale r*c*span^2 of the sink
   bounding box — small against any real delay, large against rounding. *)
let retry_skew_budget config sinks =
  let tech = config.Config.tech in
  let inf = infinity in
  let x0 = ref inf and x1 = ref neg_infinity in
  let y0 = ref inf and y1 = ref neg_infinity in
  Array.iter
    (fun (s : Clocktree.Sink.t) ->
      let p = s.Clocktree.Sink.loc in
      if p.Geometry.Point.x < !x0 then x0 := p.Geometry.Point.x;
      if p.Geometry.Point.x > !x1 then x1 := p.Geometry.Point.x;
      if p.Geometry.Point.y < !y0 then y0 := p.Geometry.Point.y;
      if p.Geometry.Point.y > !y1 then y1 := p.Geometry.Point.y)
    sinks;
  let span = Float.max (!x1 -. !x0) (!y1 -. !y0) in
  let span = if Float.is_finite span && span > 0.0 then span else 1.0 in
  1e-3
  *. tech.Clocktree.Tech.unit_res
  *. tech.Clocktree.Tech.unit_cap
  *. span *. span

type checked = {
  tree : Gated_tree.t;
  rung : string;
  degraded : event list;
}

let run_checked_info ?(mode = Default) ?(limits = no_limits)
    ?(on_event = fun (_ : event) -> ()) ?(options = default) config profile
    sinks =
  (* Every degradation event is both forwarded to the caller's callback
     and kept, in emission order, for the [checked] record — a server
     answering on behalf of a one-shot run needs to tag the response with
     how far down the ladder it went without wiring a callback through
     its scheduler. *)
  let events = ref [] in
  let on_event e =
    Util.Obs.incr degraded_counter;
    events := e :: !events;
    on_event e
  in
  match
    Util.Obs.span ~name:"validate" (fun () ->
        validate_inputs config profile sinks options)
  with
  | _ :: _ as errs -> Error errs
  | [] ->
    let n = Array.length sinks in
    (match limits.max_merge_steps with
     | Some m when n - 1 > m ->
       Error
         [
           Util.Gcr_error.Resource_limit
             {
               stage = "route";
               limit = Printf.sprintf "max_merge_steps = %d" m;
               detail =
                 Printf.sprintf "%d sinks need %d greedy merges" n (n - 1);
             };
         ]
     | _ ->
       (* Monotonic deadline arithmetic: Obs.Clock never steps backwards
          under NTP adjustment, and [>=] makes a zero budget exhaust
          deterministically (the wall clock could tick between arming and
          checking, or not). *)
       let deadline =
         match limits.wall_seconds with
         | None -> None
         | Some s -> Some (Util.Obs.Clock.now () +. s)
       in
       let out_of_time () =
         match deadline with
         | None -> false
         | Some d -> Util.Obs.Clock.now () >= d
       in
       let time_error stage =
         Util.Gcr_error.Resource_limit
           {
             stage;
             limit =
               Printf.sprintf "wall clock = %gs"
                 (Option.value limits.wall_seconds ~default:0.0);
             detail = "budget exhausted before the stage could run";
           }
       in
       (* Stage boundary check: the default mode only asserts the cost
          totals finite (cheap); paranoid re-derives every invariant. *)
       let boundary stage tree =
         match mode with
         | Paranoid -> Verify.structural tree
         | Default ->
           Util.Gcr_error.check_finite ~stage ~context:"total switched capacitance"
             (Cost.w_total tree)
       in
       let attempt stage f =
         match
           Util.Obs.span ~name:stage (fun () ->
               Util.Gcr_error.guard ~stage (fun () ->
                   let t = f () in
                   boundary stage t;
                   t))
         with
         | Ok _ as ok -> ok
         | Error e -> Error e
       in
       let skew_budget = budget options in
       (* The routing degradation ladder, in order: fast NN-heap engine;
          all-pairs dense oracle; dense oracle with the signature kernel
          disabled (direct IFT/IMATT scans); finally a bounded-skew retry
          absorbing an infeasible exact zero-skew embedding. *)
       let retry_budget =
         Some
           (Float.max
              (Option.value skew_budget ~default:0.0)
              (retry_skew_budget config sinks))
       in
       (* With sharding requested, the sharded route is a rung above the
          flat NN-heap engine: a failure there degrades to the flat route
          (same answer contract, more wall time), then down the usual
          ladder. *)
       let sharded_rungs =
         match options.shards with
         | Flat -> []
         | Auto_shards ->
           [
             ( "route:sharded",
               "routing region-parallel with the sharded engine",
               fun () -> Shard_router.route ?skew_budget config profile sinks );
           ]
         | Shards s ->
           [
             ( "route:sharded",
               Printf.sprintf
                 "routing region-parallel with the sharded engine (%d shards)" s,
               fun () ->
                 Shard_router.route ?skew_budget ~shards:s config profile sinks );
           ]
       in
       let rungs =
         sharded_rungs
         @ [
           ( "route",
             "routing with the NN-heap engine",
             fun () -> Router.route ?skew_budget config profile sinks );
           ( "route:dense",
             "falling back to the all-pairs dense merge oracle",
             fun () -> Router.route_dense ?skew_budget config profile sinks );
           ( "route:dense:tables",
             "disabling the signature kernel: direct IFT/IMATT table scans",
             fun () ->
               Router.route_dense ?skew_budget config
                 (Activity.Profile.tables_only profile)
                 sinks );
           ( "route:dense:tables:skew-budget",
             "retrying with a relaxed skew budget",
             fun () ->
               Router.route_dense ?skew_budget:retry_budget config
                 (Activity.Profile.tables_only profile)
                 sinks );
         ]
       in
       (* The wall budget is re-checked between every pair of rungs (and
          again before each optional stage below): a rung that burns the
          whole budget and then fails must not let the next rung start —
          with [wall_seconds = Some 0.] the pipeline exhausts before the
          first rung, deterministically, because the deadline compare is
          [>=] on the monotonic clock. A rung that {e succeeds} past the
          deadline still wins: a complete tree is a better answer than a
          timeout, and only the optional stages after it are skipped. *)
       let rec ladder errors = function
         | [] -> Error (List.rev errors)
         | (stage, _action, f) :: rest ->
           if out_of_time () then Error (List.rev (time_error stage :: errors))
           else begin
             Util.Obs.incr rungs_counter;
             match attempt stage f with
             | Ok tree -> Ok (stage, tree)
             | Error e ->
               (match rest with
                | (next_stage, next_action, _) :: _ ->
                  on_event
                    { stage = next_stage; action = next_action; error = Some e }
                | [] -> ());
               ladder (e :: errors) rest
           end
       in
       (match ladder [] rungs with
        | Error _ as err -> err
        | Ok (rung, routed) ->
          (* Reduction and sizing degrade to "skip the stage": the routed
             tree is already a correct (if costlier) answer, so a failing
             optimisation pass is dropped, not fatal. *)
          let optional stage action f tree =
            if out_of_time () then begin
              on_event
                {
                  stage;
                  action = "skipped: wall-clock budget exhausted; returning \
                            the partial (unoptimised) result";
                  error = Some (time_error stage);
                };
              tree
            end
            else
              match attempt stage (fun () -> f tree) with
              | Ok t -> t
              | Error e ->
                on_event { stage; action; error = Some e };
                tree
          in
          let reduced =
            optional "reduce" "skipping gate reduction, keeping the fully \
                               gated tree" (apply_reduction options) routed
          in
          let shared =
            optional "share" "skipping gate sharing, keeping per-subtree \
                              enables" (apply_share options) reduced
          in
          let sized =
            optional "size" "skipping gate sizing, keeping unit scales"
              (apply_sizing options) shared
          in
          Ok { tree = sized; rung; degraded = List.rev !events }))

let run_checked ?mode ?limits ?on_event ?options config profile sinks =
  Result.map
    (fun c -> c.tree)
    (run_checked_info ?mode ?limits ?on_event ?options config profile sinks)

let label options =
  let r =
    match options.reduction with
    | No_reduction -> ""
    | Greedy -> "+greedy"
    | Rules -> "+rules"
    | Fraction f -> Printf.sprintf "+%.0f%%" (100.0 *. f)
  in
  let s =
    match options.sizing with
    | No_sizing -> ""
    | Tapered -> "+tapered"
    | Uniform k -> Printf.sprintf "+uniform %g" k
    | Proportional -> "+proportional"
  in
  let sh =
    match options.shards with
    | Flat -> ""
    | Auto_shards -> "+sharded"
    | Shards n -> Printf.sprintf "+sharded:%d" n
  in
  let gs =
    match options.gate_share with
    | No_share -> ""
    | Share { min_instances = 1; eps = 0 } -> "+share"
    | Share { min_instances; eps } ->
      Printf.sprintf "+share:%d,%d" min_instances eps
  in
  let e =
    match options.eco with
    | No_eco -> ""
    | Eco { threshold } -> Printf.sprintf "+eco:%g" threshold
  in
  "gated" ^ r ^ s ^ sh ^ gs ^ e

let standard_comparison ?(options = default) config profile sinks =
  let skew_budget = budget options in
  [
    ("buffered", Buffered.route ?skew_budget config profile sinks);
    ("gated", Router.route ?skew_budget config profile sinks);
    (label options, run ~options config profile sinks);
  ]
