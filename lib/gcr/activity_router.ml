let check_sink_modules profile sinks =
  let n_mods = Activity.Profile.n_modules profile in
  Array.iter
    (fun s ->
      let m = s.Clocktree.Sink.module_id in
      if m >= n_mods then
        invalid_arg
          (Printf.sprintf
             "Activity_router: sink module %d outside the %d-module profile" m n_mods))
    sinks

(* Gather buffer for batched candidate costing: [cost_many] collects
   the partner signatures (or module sets) contiguously before one
   batched probability call. Allocated per call — reusing a buffer in
   domain-local storage looks safe (the engine's initial seedings run
   across domains under par_seed) but is not: whole routes also run
   concurrently on sibling systhreads of one domain (the serve
   daemon's in-process ground-truth checks), and a thread switch
   inside the batched kernel call lets another route clobber the
   shared buffer mid-read. One chunk-sized allocation per call is
   noise next to the kernel sweep it feeds. *)
let gather cnt get = Array.init cnt get

(* Sampled profiles route on instruction-hit signatures (Activity.Signature):
   each root carries the bitset of instructions that touch its subtree, a
   candidate's exact P(EN) is a word-wise OR plus a count-weighted popcount,
   and P's monotonicity under union (P(EN_{u∪v}) >= max(P_u, P_v)) gives
   Greedy.bound_scan an admissible per-root bound, so most candidates are
   dismissed before any probability is evaluated. Leaf signatures are
   independent, so they and the initial best-partner seedings run across
   domains (Util.Parallel); candidate chunks are costed through
   Signature.p_union_batch — one C kernel call and one packed-divide
   sweep per chunk instead of a boxed scalar call per candidate. *)
let signature_topology ~dense (config : Config.t) profile kern sinks =
  let tech = config.Config.tech in
  let n = Array.length sinks in
  let grow =
    Clocktree.Grow.create tech ~edge_gate:(Some tech.Clocktree.Tech.and_gate) sinks
  in
  let n_mods = Activity.Profile.n_modules profile in
  let size = (2 * n) - 1 in
  let sigs =
    Util.Parallel.init n (fun v ->
        Activity.Signature.of_set kern
          (Activity.Module_set.singleton n_mods sinks.(v).Clocktree.Sink.module_id))
  in
  let sigs = Array.append sigs (Array.init (n - 1) (fun _ -> sigs.(0))) in
  let p = Array.make size 0.0 in
  for v = 0 to n - 1 do
    p.(v) <- Activity.Signature.p kern sigs.(v)
  done;
  (* scale so the geometric tie-breaker cannot override an activity
     difference: probabilities differ by >= 1/B when they differ at all *)
  let tie = 1e-6 /. (1.0 +. Geometry.Bbox.width config.Config.die) in
  let cost a b =
    Activity.Signature.p_union kern sigs.(a) sigs.(b)
    +. (tie *. Clocktree.Grow.dist grow a b)
  in
  (* Batched [cost]: same probability (packed division is bit-identical
     per lane to the scalar divide) and the same `p +. tie *. dist`
     float expression, so the engine can mix both paths freely. *)
  let cost_many v us cnt out =
    let b = gather cnt (fun i -> sigs.(us.(i))) in
    Activity.Signature.p_union_batch kern sigs.(v) ~n:cnt b out;
    for i = 0 to cnt - 1 do
      out.(i) <- out.(i) +. (tie *. Clocktree.Grow.dist grow v us.(i))
    done
  in
  let merge a b =
    let k = Clocktree.Grow.merge grow a b in
    sigs.(k) <- Activity.Signature.union sigs.(a) sigs.(b);
    p.(k) <- Activity.Signature.p kern sigs.(k);
    k
  in
  let _root =
    if dense then Clocktree.Greedy.merge_all_dense ~n ~cost ~merge
    else
      Clocktree.Greedy.merge_all_with ~par_seed:true ~cost_many
        (Clocktree.Greedy.bound_scan ~lower:(fun v -> p.(v)))
        ~n ~cost ~merge
  in
  Clocktree.Grow.topology grow

(* Analytic profiles have no tables to index; candidate unions are
   evaluated in the Pcache scratch buffer and memoized by module set. *)
let pcache_topology ~dense (config : Config.t) profile sinks =
  let tech = config.Config.tech in
  let n = Array.length sinks in
  let grow =
    Clocktree.Grow.create tech ~edge_gate:(Some tech.Clocktree.Tech.and_gate) sinks
  in
  let mods = Array.make ((2 * n) - 1) None in
  for v = 0 to n - 1 do
    mods.(v) <- Some (Enable.of_sink profile sinks.(v)).Enable.mods
  done;
  let mods_of v = match mods.(v) with Some m -> m | None -> assert false in
  let cache = Activity.Pcache.create profile in
  let tie = 1e-6 /. (1.0 +. Geometry.Bbox.width config.Config.die) in
  let cost a b =
    let p = Activity.Pcache.p_union cache (mods_of a) (mods_of b) in
    p +. (tie *. Clocktree.Grow.dist grow a b)
  in
  (* Pcache is single-domain state, so no par_seed here; batching still
     saves the per-candidate closure dispatch and keeps the memo scratch
     hot across a chunk. Element-wise identical to [cost]. *)
  let cost_many v us cnt out =
    let b = gather cnt (fun i -> mods_of us.(i)) in
    Activity.Pcache.p_union_batch cache (mods_of v) ~n:cnt b out;
    for i = 0 to cnt - 1 do
      out.(i) <- out.(i) +. (tie *. Clocktree.Grow.dist grow v us.(i))
    done
  in
  let merge a b =
    let k = Clocktree.Grow.merge grow a b in
    mods.(k) <- Some (Activity.Module_set.union (mods_of a) (mods_of b));
    k
  in
  let _root =
    if dense then Clocktree.Greedy.merge_all_dense ~n ~cost ~merge
    else Clocktree.Greedy.merge_all_with ~cost_many Clocktree.Greedy.scan ~n ~cost ~merge
  in
  Activity.Pcache.flush_obs cache;
  Clocktree.Grow.topology grow

let build_topology ~dense config profile sinks =
  Clocktree.Sink.validate_array sinks;
  check_sink_modules profile sinks;
  match Activity.Profile.signature_kernel profile with
  | Some kern -> signature_topology ~dense config profile kern sinks
  | None -> pcache_topology ~dense config profile sinks

let topology config profile sinks = build_topology ~dense:false config profile sinks

let topology_dense config profile sinks =
  build_topology ~dense:true config profile sinks

let route ?skew_budget config profile sinks =
  let topo = topology config profile sinks in
  Gated_tree.build ?skew_budget config profile sinks topo
    ~kind:(fun _ -> Gated_tree.Gated)
